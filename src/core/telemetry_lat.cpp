#include "core/telemetry_lat.hpp"

#include <cinttypes>
#include <cstdio>

#include "core/log.hpp"
#include "core/otrace.hpp"
#include "core/telemetry.hpp"

#if ASPEN_TELEMETRY_ENABLED
#include <signal.h>  // sigaction (POSIX; <csignal> need not declare it)

#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#endif

namespace aspen::telemetry {

namespace {

constexpr const char* kLatStreamNames[] = {
    "rma_put_eager",
    "rma_put_deferred",
    "rma_get_eager",
    "rma_get_deferred",
    "rpc_eager",
    "rpc_deferred",
    "amo_eager",
    "amo_deferred",
    "whenall_eager",
    "whenall_deferred",
    "wire_delivery",
    "progress_gap",
    "sendq_residency",
    "shm_delivery",
    "agg_batch_fill",
};
static_assert(std::size(kLatStreamNames) == kLatStreamCount,
              "latency stream name table out of sync with the enum");

constexpr const char* kOpClassNames[] = {
    "rma_put", "rma_get", "rpc", "amo", "when_all",
};
static_assert(std::size(kOpClassNames) == kOpClassCount,
              "op_class name table out of sync with the enum");

// Same serialization-key discipline as the counter names: the sidecar
// parser looks streams up by name, so a duplicate or malformed entry would
// silently alias two histograms.
constexpr bool lat_names_well_formed() {
  for (std::size_t i = 0; i < kLatStreamCount; ++i) {
    const char* a = kLatStreamNames[i];
    if (a == nullptr || a[0] == '\0') return false;
    for (const char* p = a; *p != '\0'; ++p)
      if (!((*p >= 'a' && *p <= 'z') || (*p >= '0' && *p <= '9') ||
            *p == '_'))
        return false;
    for (std::size_t j = i + 1; j < kLatStreamCount; ++j) {
      const char* b = kLatStreamNames[j];
      std::size_t k = 0;
      while (a[k] != '\0' && a[k] == b[k]) ++k;
      if (a[k] == b[k]) return false;  // both '\0': identical strings
    }
  }
  return true;
}
static_assert(lat_names_well_formed(),
              "latency stream names must be unique, non-empty snake_case");

// The op-class x disposition grid must line up with the enum prefix:
// stream_of() is pure index arithmetic.
static_assert(stream_of(op_class::rma_put, disposition::eager) ==
              lat_stream::rma_put_eager);
static_assert(stream_of(op_class::when_all, disposition::deferred) ==
              lat_stream::whenall_deferred);
static_assert(2 * kOpClassCount ==
              static_cast<std::size_t>(lat_stream::wire_delivery));

}  // namespace

const char* to_string(lat_stream s) noexcept {
  return kLatStreamNames[static_cast<std::size_t>(s)];
}

const char* to_string(op_class c) noexcept {
  return kOpClassNames[static_cast<std::size_t>(c)];
}

namespace watchdog {

std::string report_path(const std::string& base, int rank) {
  return base + ".rank" + std::to_string(rank) + ".health.json";
}

#if ASPEN_TELEMETRY_ENABLED

namespace {

struct pending_op {
  op_class cls;
  int rank;               ///< initiating rank (TLS rank at track time)
  std::uint64_t start_ns; ///< detail::trace_now_ns() at track time
};

struct wd_state {
  std::mutex mu;
  // Configuration (guarded by mu; read through the relaxed mirror below
  // on the hot path).
  bool configured = false;
  std::uint64_t threshold_ns = 0;
  std::string report_base = "aspen";
  // Pending-op registry (guarded by mu). Ordered map: ids are issued
  // monotonically, so begin() per rank scan finds the oldest fast enough
  // for a throttled check.
  std::uint64_t next_id = 1;
  std::map<std::uint64_t, pending_op> pending;
  transport_probe probe;  ///< guarded by mu
  std::atomic<int> reports{0};
  std::atomic<bool> enabled_mirror{false};
  std::atomic<bool> signal_installed{false};
  /// 0 healthy, 1 stall episode active, 2 recovered (health_state()).
  std::atomic<int> health{0};
};

/// Leaked like every telemetry registry: checks can run during static
/// destruction (a final progress drain in an atexit path).
wd_state& st() noexcept {
  static wd_state* s = new wd_state;
  return *s;
}

/// SIGUSR1 -> dump at the next check. sig_atomic_t, written only from the
/// handler and consumed with a plain read+clear in maybe_check.
volatile sig_atomic_t g_report_requested = 0;

struct wd_tls {
  int rank = 0;
  std::uint64_t last_progress_ns = 0;
  std::uint64_t next_check_ns = 0;
  bool in_stall = false;  ///< one report per stall episode
};

wd_tls& tls() noexcept {
  static thread_local wd_tls t;
  return t;
}

void ensure_configured_locked(wd_state& s) {
  if (s.configured) return;
  s.configured = true;
  const char* v = std::getenv("ASPEN_WATCHDOG_MS");
  if (v != nullptr && *v != '\0') {
    char* end = nullptr;
    const unsigned long long ms = std::strtoull(v, &end, 10);
    if (end != v && *end == '\0') {
      s.threshold_ns = static_cast<std::uint64_t>(ms) * 1'000'000u;
    } else {
      aspen::log(log_level::warn,
                 "watchdog: ignoring unparsable ASPEN_WATCHDOG_MS=\"%s\"", v);
    }
  }
  const char* base = std::getenv("ASPEN_WATCHDOG_REPORT");
  if (base != nullptr && *base != '\0') s.report_base = base;
  s.enabled_mirror.store(s.threshold_ns != 0, std::memory_order_relaxed);
}

std::uint64_t threshold_ns_locked(wd_state& s) {
  ensure_configured_locked(s);
  return s.threshold_ns;
}

extern "C" void wd_sigusr1_handler(int) { g_report_requested = 1; }

/// Dump one health report for `rank`. Called with `mu` NOT held (the
/// transport probe takes the endpoint's peer locks).
void write_report(int rank, const char* reason, std::uint64_t now_ns,
                  std::uint64_t threshold_ns, std::size_t pending_count,
                  std::uint64_t oldest_age_ns, const char* oldest_cls,
                  std::uint64_t gap_ns, const transport_status& ts) {
  wd_state& s = st();
  std::string path;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    path = report_path(s.report_base, rank);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "{\n  \"rank\": %d,\n  \"reason\": \"%s\",\n"
               "  \"threshold_ms\": %" PRIu64 ",\n"
               "  \"detected_at_ns\": %" PRIu64 ",\n"
               "  \"pending_ops\": %zu,\n"
               "  \"oldest_op_age_ms\": %" PRIu64 ",\n"
               "  \"oldest_op_class\": \"%s\",\n"
               "  \"progress_gap_ms\": %" PRIu64,
               rank, reason, threshold_ns / 1'000'000u, now_ns,
               pending_count, oldest_age_ns / 1'000'000u,
               oldest_cls == nullptr ? "none" : oldest_cls,
               gap_ns / 1'000'000u);
  if (ts.valid) {
    std::fprintf(f,
                 ",\n  \"transport\": {\n"
                 "    \"sendq_bytes\": %" PRIu64 ",\n"
                 "    \"staged_msgs\": %" PRIu64 ",\n"
                 "    \"oldest_sendq_age_ms\": %" PRIu64 ",\n"
                 "    \"shm_ring_depth_bytes\": %" PRIu64 ",\n"
                 "    \"shm_ring_high_water\": %" PRIu64 "%s%s\n  }",
                 ts.sendq_bytes, ts.staged_msgs,
                 ts.oldest_sendq_age_ns / 1'000'000u,
                 ts.shm_ring_depth_bytes, ts.shm_ring_high_water,
                 ts.detail_json.empty() ? "" : ",\n    ",
                 ts.detail_json.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  s.reports.fetch_add(1, std::memory_order_relaxed);
  aspen::log(log_level::error,
             "watchdog: rank %d %s (oldest op %" PRIu64 " ms, gap %" PRIu64
             " ms, %zu pending) -> %s",
             rank, reason, oldest_age_ns / 1'000'000u, gap_ns / 1'000'000u,
             pending_count, path.c_str());
  // A tripped watchdog is exactly the moment the flight recorder exists
  // for: dump the otrace ring next to the health report.
  otrace::dump_now();
}

void maybe_check(std::uint64_t now_ns, std::uint64_t prev_progress_ns) {
  wd_state& s = st();
  wd_tls& t = tls();
  // Time-throttle: at most one full scan per threshold/4 (>= 1ms).
  if (now_ns < t.next_check_ns && g_report_requested == 0) return;

  std::uint64_t threshold = 0;
  std::size_t pending_count = 0;
  std::uint64_t oldest_age = 0;
  const char* oldest_cls = nullptr;
  transport_probe probe;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    threshold = threshold_ns_locked(s);
    if (threshold == 0) return;
    for (const auto& [id, op] : s.pending) {
      if (op.rank != t.rank) continue;
      ++pending_count;
      const std::uint64_t age =
          now_ns > op.start_ns ? now_ns - op.start_ns : 0;
      if (age > oldest_age) {
        oldest_age = age;
        oldest_cls = to_string(op.cls);
      }
    }
    probe = s.probe;
  }
  std::uint64_t step = threshold / 4;
  if (step < 1'000'000u) step = 1'000'000u;
  t.next_check_ns = now_ns + step;

  install_signal_handler();

  const std::uint64_t gap =
      prev_progress_ns != 0 && now_ns > prev_progress_ns
          ? now_ns - prev_progress_ns
          : 0;
  const bool forced = g_report_requested != 0;
  if (forced) g_report_requested = 0;

  transport_status ts;
  const char* reason = nullptr;
  if (oldest_age > threshold) {
    reason = "oldest_op";
  } else if (pending_count > 0 && gap > threshold) {
    // A long progress gap is only a stall when work was actually waiting;
    // an idle rank between regions is not starved.
    reason = "progress_gap";
  }
  if (probe) {
    ts = probe();
    if (reason == nullptr && ts.valid &&
        ts.oldest_sendq_age_ns > threshold) {
      reason = "sendq_stall";
    }
  }

  if (reason == nullptr && !forced) {
    if (t.in_stall) s.health.store(2, std::memory_order_relaxed);
    t.in_stall = false;  // healthy: arm the next episode
    return;
  }
  if (forced) {
    write_report(t.rank, "sigusr1", now_ns, threshold, pending_count,
                 oldest_age, oldest_cls, gap, ts);
    return;
  }
  if (t.in_stall) return;  // already reported this episode
  t.in_stall = true;
  s.health.store(1, std::memory_order_relaxed);
  write_report(t.rank, reason, now_ns, threshold, pending_count, oldest_age,
               oldest_cls, gap, ts);
}

}  // namespace

void configure(std::uint64_t threshold_ms, const char* report_base) noexcept {
  wd_state& s = st();
  std::lock_guard<std::mutex> lk(s.mu);
  s.configured = true;
  s.threshold_ns = threshold_ms * 1'000'000u;
  s.report_base = report_base == nullptr ? "aspen" : report_base;
  s.enabled_mirror.store(s.threshold_ns != 0, std::memory_order_relaxed);
}

bool enabled() noexcept {
  wd_state& s = st();
  if (!s.enabled_mirror.load(std::memory_order_relaxed)) {
    // Cheap until first configured; parse the environment exactly once.
    std::lock_guard<std::mutex> lk(s.mu);
    ensure_configured_locked(s);
  }
  return s.enabled_mirror.load(std::memory_order_relaxed);
}

std::uint64_t threshold_ms() noexcept {
  wd_state& s = st();
  std::lock_guard<std::mutex> lk(s.mu);
  return threshold_ns_locked(s) / 1'000'000u;
}

void set_thread_rank(int rank) noexcept {
  tls().rank = rank < 0 ? 0 : rank;
}

std::uint64_t track_op(op_class cls) noexcept {
  if (!enabled()) return 0;
  wd_state& s = st();
  const std::uint64_t now = detail::trace_now_ns();
  std::lock_guard<std::mutex> lk(s.mu);
  const std::uint64_t id = s.next_id++;
  s.pending.emplace(id, pending_op{cls, tls().rank, now});
  return id;
}

void complete_op(std::uint64_t id) noexcept {
  if (id == 0) return;
  wd_state& s = st();
  std::lock_guard<std::mutex> lk(s.mu);
  s.pending.erase(id);
}

void note_progress(std::uint64_t now_ns) noexcept {
  wd_tls& t = tls();
  const std::uint64_t prev = t.last_progress_ns;
  t.last_progress_ns = now_ns;
  if (!st().enabled_mirror.load(std::memory_order_relaxed) &&
      g_report_requested == 0) {
    // enabled() below would parse the env lazily; do it only until the
    // first real check resolves the configuration.
    if (!enabled()) return;
  }
  maybe_check(now_ns, prev);
}

void poll_check() noexcept {
  if (!st().enabled_mirror.load(std::memory_order_relaxed)) return;
  const std::uint64_t now = detail::trace_now_ns();
  maybe_check(now, tls().last_progress_ns);
}

void request_report() noexcept { g_report_requested = 1; }

void install_signal_handler() noexcept {
  wd_state& s = st();
  bool expected = false;
  if (!s.signal_installed.compare_exchange_strong(
          expected, true, std::memory_order_relaxed))
    return;
  struct sigaction sa{};
  sa.sa_handler = &wd_sigusr1_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &sa, nullptr);
}

void set_transport_probe(transport_probe probe) {
  wd_state& s = st();
  std::lock_guard<std::mutex> lk(s.mu);
  s.probe = std::move(probe);
}

int reports_written() noexcept {
  return st().reports.load(std::memory_order_relaxed);
}

int health_state() noexcept {
  return st().health.load(std::memory_order_relaxed);
}

#endif  // ASPEN_TELEMETRY_ENABLED

}  // namespace watchdog

}  // namespace aspen::telemetry
