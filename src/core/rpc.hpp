// Remote procedure calls.
//
// rpc_ff(target, fn, args...) runs fn(args...) on the target rank inside its
// progress engine, fire-and-forget. rpc(target, fn, args...) additionally
// returns a future for fn's result, readied on the initiator when the reply
// arrives (always deferred — an RPC can never complete synchronously).
// Callbacks returning a future are unwrapped: the reply is sent once the
// inner future readies on the target.
//
// `fn` must be trivially copyable (it is shipped by bytes); arguments and
// results must be serializable (serialization.hpp).
#pragma once

#include <cstdint>
#include <type_traits>

#include "core/cx_state.hpp"
#include "core/serialization.hpp"

namespace aspen {

namespace detail {

/// Serialize a callable's bytes. Captureless (empty) callables have no
/// initialized state — write a fixed zero byte of the same size instead of
/// their indeterminate padding (also silences -Wmaybe-uninitialized).
template <typename Fn>
void write_callable(ser_writer& w, const Fn& fn) {
  if constexpr (std::is_empty_v<Fn>) {
    static_assert(sizeof(Fn) == 1);
    w.write(std::uint8_t{0});
  } else {
    w.write_bytes(&fn, sizeof(Fn));
  }
}

/// Callables shipped by bytes must be memcpy-safe. We check trivial copy
/// construction + destruction rather than std::is_trivially_copyable
/// because GCC 12 mis-reports the latter for closure types that have been
/// mentioned inside a std::tuple (as every completion list does).
template <typename Fn>
inline constexpr bool shippable_callable =
    std::is_trivially_copy_constructible_v<Fn> &&
    std::is_trivially_destructible_v<Fn>;

/// Copy a trivially-copyable callable out of a (possibly misaligned)
/// payload into aligned storage and return a reference.
template <typename Fn>
struct aligned_fn {
  alignas(Fn) std::byte storage[sizeof(Fn)];
  explicit aligned_fn(ser_reader& r) { r.read_bytes(storage, sizeof(Fn)); }
  [[nodiscard]] Fn& get() noexcept { return *reinterpret_cast<Fn*>(storage); }
};

template <typename... U>
void rpc_reply_handler(gex::runtime&, int /*me*/, int /*src*/,
                       std::byte* payload, std::size_t len) {
  ser_reader r(payload, len);
  auto* c = reinterpret_cast<cell<U...>*>(r.read<std::uint64_t>());
  // Issue timestamp echoed by the target (initiator clock; 0 when the
  // initiator was built without telemetry).
  const auto issue_ns = r.read<std::uint64_t>();
  if constexpr (sizeof...(U) > 0) {
    c->set_value_tuple(r.read<std::tuple<U...>>());
  }
  // Readying the cell is the rpc's completion; the reply AM carried the
  // trace, so this lands on the initiating op's causal chain.
  otrace::note(otrace::stage::fulfill_deferred);
  c->satisfy(1);
  c->drop_ref();
  if (issue_ns != 0)
    telemetry::note_latency(telemetry::lat_stream::rpc_deferred,
                            telemetry::lat_now_ns() - issue_ns);
}

/// Serialize and send the reply that fulfills `cell_bits` on `initiator`.
/// `issue_ns` is the initiator-clock issue timestamp echoed back verbatim
/// so the initiator can record round-trip latency without clock math.
template <typename... U>
void send_rpc_reply(int me, int initiator, std::uint64_t cell_bits,
                    std::uint64_t issue_ns, const std::tuple<U...>& vals) {
  ser_writer w(2 * sizeof(std::uint64_t) + 64);
  w.write(cell_bits);
  w.write(issue_ns);
  if constexpr (sizeof...(U) > 0) w.write(vals);
  detail::ctx().rt->send_am(
      initiator,
      gex::am_message(&rpc_reply_handler<U...>, me, w.data(), w.size()));
}

template <typename Fn, typename ArgsTuple>
void rpc_ff_request_handler(gex::runtime&, int /*me*/, int /*src*/,
                            std::byte* payload, std::size_t len) {
  ser_reader r(payload, len);
  aligned_fn<Fn> fn(r);
  ArgsTuple args = r.read<ArgsTuple>();
  std::apply(fn.get(), std::move(args));
}

template <typename Fn, typename ArgsTuple, typename... U>
void rpc_request_handler(gex::runtime&, int me, int src, std::byte* payload,
                         std::size_t len) {
  ser_reader r(payload, len);
  const auto cell_bits = r.read<std::uint64_t>();
  const auto issue_ns = r.read<std::uint64_t>();
  aligned_fn<Fn> fn(r);
  ArgsTuple args = r.read<ArgsTuple>();
  using R = decltype(std::apply(fn.get(), std::move(args)));
  if constexpr (is_future_v<R>) {
    future<U...> res = std::apply(fn.get(), std::move(args));
    if (res.ready()) {
      send_rpc_reply<U...>(me, src, cell_bits, issue_ns, res.result_tuple());
    } else {
      res.then([me, src, cell_bits, issue_ns](U... vals) {
        send_rpc_reply<U...>(me, src, cell_bits, issue_ns,
                             std::tuple<U...>(vals...));
      });
    }
  } else if constexpr (std::is_void_v<R>) {
    std::apply(fn.get(), std::move(args));
    send_rpc_reply<>(me, src, cell_bits, issue_ns, std::tuple<>{});
  } else {
    R v = std::apply(fn.get(), std::move(args));
    send_rpc_reply<std::decay_t<R>>(me, src, cell_bits, issue_ns,
                                    std::tuple<std::decay_t<R>>(std::move(v)));
  }
}

/// Shared implementation for rpc_ff and remote_cx::as_rpc dispatch.
template <typename Fn, typename ArgsTuple>
void send_rpc_ff_tuple(int target, const Fn& fn, const ArgsTuple& args) {
  static_assert(shippable_callable<Fn>,
                "rpc callables must be trivially copyable");
  telemetry::span sp("rpc_ff", "rpc");
  telemetry::count(telemetry::counter::rpc_ff_sent);
  otrace::op_scope ts;
  ser_writer w(sizeof(Fn) + 64);
  write_callable(w, fn);
  w.write(args);
  detail::rank_context& c = detail::ctx();
  c.rt->send_am(target,
                gex::am_message(&rpc_ff_request_handler<Fn, ArgsTuple>, c.rank,
                                w.data(), w.size()));
}

/// future<U...> type produced by an rpc whose callback returns R.
template <typename R>
struct rpc_future {
  using type = then_result_t<R>;
};

/// Map a future<U...>-returning callback to the matching request handler.
template <typename Fn, typename ArgsTuple, typename... U>
gex::am_handler rpc_handler_for_future(future<U...>*) {
  return &rpc_request_handler<Fn, ArgsTuple, U...>;
}

}  // namespace detail

/// Run fn(args...) on `target` during its progress engine; no reply.
template <typename Fn, typename... Args>
void rpc_ff(int target, Fn fn, Args&&... args) {
  using ArgsTuple = std::tuple<std::decay_t<Args>...>;
  static_assert((serializable<Args> && ...),
                "rpc arguments must be serializable");
  detail::send_rpc_ff_tuple(target, fn,
                            ArgsTuple(std::forward<Args>(args)...));
}

/// Run fn(args...) on `target`; returns a future for the result, readied on
/// the initiator when the reply arrives.
template <typename Fn, typename... Args>
auto rpc(int target, Fn fn, Args&&... args) {
  static_assert(detail::shippable_callable<Fn>,
                "rpc callables must be trivially copyable");
  static_assert((serializable<Args> && ...),
                "rpc arguments must be serializable");
  using ArgsTuple = std::tuple<std::decay_t<Args>...>;
  using R = std::invoke_result_t<Fn, std::decay_t<Args>...>;
  using RFut = typename detail::rpc_future<R>::type;
  using RCell = typename detail::rfut_traits<RFut>::cell_t;

  telemetry::span sp("rpc", "rpc");
  telemetry::count(telemetry::counter::rpc_roundtrip);
  otrace::op_scope ts;
  auto* c = new RCell();
  c->deps = 1;
  c->add_ref();  // the in-flight reply's reference

  ser_writer w(2 * sizeof(std::uint64_t) + sizeof(Fn) + 64);
  w.write(reinterpret_cast<std::uint64_t>(c));
  // Issue timestamp, echoed back in the reply. Always written (0 when
  // telemetry is compiled out) so the request layout is build-independent.
  w.write(telemetry::lat_now_ns());
  detail::write_callable(w, fn);
  w.write(ArgsTuple(std::forward<Args>(args)...));

  detail::rank_context& rc = detail::ctx();
  gex::am_handler h;
  if constexpr (detail::is_future_v<R>) {
    h = detail::rpc_handler_for_future<Fn, ArgsTuple>(static_cast<R*>(nullptr));
  } else if constexpr (std::is_void_v<R>) {
    h = &detail::rpc_request_handler<Fn, ArgsTuple>;
  } else {
    h = &detail::rpc_request_handler<Fn, ArgsTuple, std::decay_t<R>>;
  }
  rc.rt->send_am(target, gex::am_message(h, rc.rank, w.data(), w.size()));
  return RFut(c, /*add_ref=*/false);
}

}  // namespace aspen
