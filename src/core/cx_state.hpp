// Injection-time completion processing — where eager notification happens.
//
// Communication operations call into this engine with their completion list
// and a flag saying whether the data movement completed synchronously. For
// each requested notification the engine either
//
//   (a) SYNC + eager permitted:  deliver right now — return a ready future
//       (pooled when value-less), skip promise modifications entirely for
//       value-less promises, run LPCs inline; or
//   (b) SYNC + deferred:  perform the legacy machinery the paper measures —
//       heap-allocate an internal cell (futures) or bump the promise
//       counter, and enqueue the notification on the progress queue; or
//   (c) ASYNC (remote transfer): wire the notification into a heap-allocated
//       operation record that the reply handler fulfills during a later
//       progress-engine entry (deferred by nature).
//
// Source completion is synchronous at injection on this substrate (payloads
// are copied into the message before the initiating call returns), so
// source-event items always take path (a)/(b).
#pragma once

#include <tuple>
#include <type_traits>
#include <utility>

#include "core/completion.hpp"
#include "core/future.hpp"
#include "core/inplace_function.hpp"
#include "core/otrace.hpp"
#include "core/persona.hpp"
#include "core/telemetry.hpp"
#include "core/when_all.hpp"

namespace aspen::detail {

[[nodiscard]] inline bool resolve_eager(eagerness e) noexcept {
  switch (e) {
    case eagerness::eager:
      return true;
    case eagerness::defer:
      return false;
    case eagerness::dflt:
      break;
  }
  return have_ctx() ? ctx().ver.eager_default : true;
}

// ---------------------------------------------------------------------------
// Return-type computation
// ---------------------------------------------------------------------------

template <typename Item, typename... V>
struct item_futs {
  using type = std::tuple<>;  // promise/lpc/rpc items yield no return future
};
template <typename... V>
struct item_futs<future_cx<event_operation_t>, V...> {
  using type = std::tuple<future<V...>>;
};
template <typename... V>
struct item_futs<future_cx<event_source_t>, V...> {
  using type = std::tuple<future<>>;
};

template <typename FutsTuple>
struct collapse_type {
  using type = FutsTuple;  // two or more futures: the tuple itself
};
template <>
struct collapse_type<std::tuple<>> {
  using type = void;
};
template <typename F>
struct collapse_type<std::tuple<F>> {
  using type = F;
};

template <typename Cxs, typename... V>
struct cx_return;
template <typename... Items, typename... V>
struct cx_return<completions<Items...>, V...> {
  using futs_tuple = decltype(std::tuple_cat(
      std::declval<typename item_futs<Items, V...>::type>()...));
  using type = typename collapse_type<futs_tuple>::type;
};

template <typename Cxs, typename... V>
using cx_return_t = typename cx_return<std::decay_t<Cxs>, V...>::type;

template <typename FutsTuple>
decltype(auto) collapse_futs(FutsTuple&& t) {
  constexpr std::size_t n = std::tuple_size_v<std::decay_t<FutsTuple>>;
  if constexpr (n == 0) {
    return;
  } else if constexpr (n == 1) {
    return std::get<0>(std::forward<FutsTuple>(t));
  } else {
    return std::forward<FutsTuple>(t);
  }
}

// ---------------------------------------------------------------------------
// Deferred-notification helpers (the machinery eager completion bypasses)
// ---------------------------------------------------------------------------

/// Allocate a cell holding `vals`, enqueue its readying on the *initiating
/// persona's* deferred queue, and return a future for it. This is the
/// legacy per-operation cost: one heap allocation plus a queue round trip.
/// The notification executes only when a thread holding that persona next
/// enters the progress engine — under multithreaded injection, that is the
/// injecting worker's own thread, never a sibling's.
template <typename... V>
[[nodiscard]] future<V...> deferred_future(V... vals) {
  telemetry::count(telemetry::counter::cx_deferred_queued);
  auto* c = new cell<V...>();
  c->deps = 1;
  c->set_value(vals...);
  c->add_ref();  // the queue's reference
  current_persona().enqueue_deferred(
      [c, oc = telemetry::op_capture{}, tid = otrace::current()] {
        otrace::note_id(tid, otrace::stage::fulfill_deferred);
        c->satisfy(1);
        c->drop_ref();
        oc.complete_deferred();
      });
  return future<V...>(c, /*add_ref=*/false);
}

/// Enqueue fulfillment of one (already-required) promise dependency on the
/// initiating persona.
template <typename... T, typename... V>
void deferred_promise_fulfill(promise<T...>& p, V... vals) {
  telemetry::count(telemetry::counter::cx_deferred_queued);
  cell<T...>* c = p.raw_cell();
  c->add_ref();
  current_persona().enqueue_deferred(
      [c, vals..., oc = telemetry::op_capture{},
       tid = otrace::current()] {
        otrace::note_id(tid, otrace::stage::fulfill_deferred);
        if constexpr (sizeof...(V) > 0) c->set_value(vals...);
        c->satisfy(1);
        c->drop_ref();
        oc.complete_deferred();
      });
}

// ---------------------------------------------------------------------------
// Synchronous-completion handlers (one per item kind/event)
// ---------------------------------------------------------------------------

// future_cx, operation event: carries the values.
template <typename... V, typename RemoteSend>
std::tuple<future<V...>> handle_sync(future_cx<event_operation_t>& it,
                                     RemoteSend&, V... vals) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    if constexpr (sizeof...(V) == 0) {
      return {make_future()};
    } else {
      return {make_future(vals...)};
    }
  }
  return {deferred_future<V...>(vals...)};
}

// future_cx, source event: value-less.
template <typename... V, typename RemoteSend>
std::tuple<future<>> handle_sync(future_cx<event_source_t>& it, RemoteSend&,
                                 V...) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    return {make_future()};
  }
  return {deferred_future<>()};
}

// promise_cx, operation event.
template <typename... V, typename... T, typename RemoteSend>
std::tuple<> handle_sync(promise_cx<event_operation_t, T...>& it, RemoteSend&,
                         V... vals) {
  static_assert(std::is_same_v<std::tuple<T...>, std::tuple<V...>>,
                "operation_cx::as_promise: promise type must match the "
                "operation's produced values");
  if constexpr (sizeof...(V) == 0) {
    if (resolve_eager(it.e)) {
      telemetry::count(telemetry::counter::cx_eager_taken);
      telemetry::note_op_eager();
      otrace::note_fulfill_eager();
      return {};  // full elision (paper §III-A)
    }
    it.pro.require_anonymous(1);
    deferred_promise_fulfill(it.pro);
  } else {
    it.pro.require_anonymous(1);
    if (resolve_eager(it.e)) {
      telemetry::count(telemetry::counter::cx_eager_taken);
      telemetry::note_op_eager();
      otrace::note_fulfill_eager();
      it.pro.fulfill_result(vals...);
      it.pro.fulfill_anonymous(1);
    } else {
      deferred_promise_fulfill(it.pro, vals...);
    }
  }
  return {};
}

// promise_cx, source event: value-less.
template <typename... V, typename RemoteSend>
std::tuple<> handle_sync(promise_cx<event_source_t>& it, RemoteSend&, V...) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    return {};
  }
  it.pro.require_anonymous(1);
  deferred_promise_fulfill(it.pro);
  return {};
}

// lpc_cx, operation event: receives the values.
template <typename... V, typename Fn, typename RemoteSend>
std::tuple<> handle_sync(lpc_cx<event_operation_t, Fn>& it, RemoteSend&,
                         V... vals) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    it.fn(vals...);
  } else {
    telemetry::count(telemetry::counter::cx_deferred_queued);
    current_persona().enqueue_deferred(
        [fn = std::move(it.fn), vals..., oc = telemetry::op_capture{},
         tid = otrace::current()]() mutable {
          otrace::note_id(tid, otrace::stage::fulfill_deferred);
          fn(vals...);
          oc.complete_deferred();
        });
  }
  return {};
}

// lpc_cx, source event.
template <typename... V, typename Fn, typename RemoteSend>
std::tuple<> handle_sync(lpc_cx<event_source_t, Fn>& it, RemoteSend&, V...) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    it.fn();
  } else {
    telemetry::count(telemetry::counter::cx_deferred_queued);
    current_persona().enqueue_deferred(
        [fn = std::move(it.fn), oc = telemetry::op_capture{},
         tid = otrace::current()]() mutable {
          otrace::note_id(tid, otrace::stage::fulfill_deferred);
          fn();
          oc.complete_deferred();
        });
  }
  return {};
}

// rpc_cx: delegated to the operation's remote sender.
template <typename... V, typename Fn, typename... Args, typename RemoteSend>
std::tuple<> handle_sync(rpc_cx<Fn, Args...>& it, RemoteSend& rsend, V...) {
  rsend(it);
  return {};
}

/// Process all completions of an operation whose data movement completed
/// synchronously; returns the (possibly empty) tuple of requested futures.
/// `rsend(rpc_item)` dispatches remote-completion RPCs.
template <typename... V, typename Cxs, typename RemoteSend>
auto process_sync_tuple(Cxs&& cxs, RemoteSend&& rsend, V... vals) {
  return std::apply(
      [&](auto&... item) {
        return std::tuple_cat(handle_sync<V...>(item, rsend, vals...)...);
      },
      cxs.items);
}

/// As process_sync_tuple, collapsed to the operation's public return shape
/// (void / single future / tuple).
template <typename... V, typename Cxs, typename RemoteSend>
auto process_sync(Cxs&& cxs, RemoteSend&& rsend, V... vals)
    -> cx_return_t<Cxs, V...> {
  return collapse_futs(
      process_sync_tuple<V...>(std::forward<Cxs>(cxs), rsend, vals...));
}

// ---------------------------------------------------------------------------
// Asynchronous (remote) path
// ---------------------------------------------------------------------------

/// Heap record tracking one in-flight remote operation's operation-event
/// sinks. Fulfilled (with the produced values) by the reply handler, which
/// runs on whichever thread holds the rank's master persona. The record is
/// bound to the *initiating* persona at creation: if the fulfilling thread
/// holds it (the single-threaded case), the sinks run inline during its
/// progress entry; otherwise they are routed to the initiator's mailbox as
/// a cross-thread LPC, so the cells and promises they touch are only ever
/// mutated by the thread holding the initiating persona.
template <typename... V>
struct op_record {
  inplace_function<void(V...), 64> complete;
  persona* initiator = nullptr;
  /// Issuing op's class + issue timestamp, captured at construction (the
  /// record is created inside the initiating call's op_scope). A remote
  /// op's notification is deferred by nature, so fulfill() records on the
  /// deferred stream.
  telemetry::op_capture issued;
  std::uint64_t wd_id = 0;  ///< stall-watchdog handle (0 = untracked)
  /// otrace id of the initiating op (0 = unsampled), captured inside the
  /// initiating call's otrace::op_scope so the reply-side fulfillment can
  /// rejoin the causal chain.
  std::uint64_t trace = otrace::current();

  void add_sink(inplace_function<void(V...), 64> sink) {
    if (!complete) {
      complete = std::move(sink);
    } else {
      complete = [prev = std::move(complete),
                  s = std::move(sink)](V... vs) mutable {
        prev(vs...);
        s(vs...);
      };
    }
  }

  void fulfill(V... vs) {
    // The op is no longer pending the moment the reply reaches us, even if
    // the notification still routes to another thread's mailbox below.
    telemetry::watchdog::complete_op(wd_id);
    if (initiator == nullptr || initiator->active_with_caller()) {
      otrace::note_id(trace, otrace::stage::fulfill_deferred);
      if (complete) complete(vs...);
      issued.complete_deferred();
      delete this;
      return;
    }
    otrace::note_id(trace, otrace::stage::lpc_hop);
    initiator->lpc_ff([this, vs...] {
      otrace::note_id(trace, otrace::stage::fulfill_deferred);
      if (complete) complete(vs...);
      issued.complete_deferred();
      delete this;
    });
  }
};

// future_cx, operation event, async: allocate the cell now, fulfill later.
template <typename... V, typename RemoteSend>
std::tuple<future<V...>> handle_async(future_cx<event_operation_t>&,
                                      op_record<V...>& rec, RemoteSend&) {
  telemetry::count(telemetry::counter::cx_remote_async);
  auto* c = new cell<V...>();
  c->deps = 1;
  c->add_ref();  // the record's reference
  rec.add_sink([c](V... vs) {
    c->set_value(vs...);
    c->satisfy(1);
    c->drop_ref();
  });
  return {future<V...>(c, /*add_ref=*/false)};
}

// future_cx, source event: synchronous even on the async path (the payload
// was copied out of the source buffer during injection).
template <typename... V, typename RemoteSend>
std::tuple<future<>> handle_async(future_cx<event_source_t>& it,
                                  op_record<V...>&, RemoteSend&) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    return {make_future()};
  }
  return {deferred_future<>()};
}

template <typename... V, typename... T, typename RemoteSend>
std::tuple<> handle_async(promise_cx<event_operation_t, T...>& it,
                          op_record<V...>& rec, RemoteSend&) {
  static_assert(std::is_same_v<std::tuple<T...>, std::tuple<V...>>,
                "operation_cx::as_promise: promise type must match the "
                "operation's produced values");
  telemetry::count(telemetry::counter::cx_remote_async);
  it.pro.require_anonymous(1);
  rec.add_sink([p = it.pro](V... vs) mutable {
    if constexpr (sizeof...(V) > 0) p.fulfill_result(vs...);
    p.fulfill_anonymous(1);
  });
  return {};
}

template <typename... V, typename RemoteSend>
std::tuple<> handle_async(promise_cx<event_source_t>& it, op_record<V...>&,
                          RemoteSend&) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    return {};
  }
  it.pro.require_anonymous(1);
  deferred_promise_fulfill(it.pro);
  return {};
}

template <typename... V, typename Fn, typename RemoteSend>
std::tuple<> handle_async(lpc_cx<event_operation_t, Fn>& it,
                          op_record<V...>& rec, RemoteSend&) {
  telemetry::count(telemetry::counter::cx_remote_async);
  rec.add_sink([fn = std::move(it.fn)](V... vs) mutable { fn(vs...); });
  return {};
}

template <typename... V, typename Fn, typename RemoteSend>
std::tuple<> handle_async(lpc_cx<event_source_t, Fn>& it, op_record<V...>&,
                          RemoteSend&) {
  if (resolve_eager(it.e)) {
    telemetry::count(telemetry::counter::cx_eager_taken);
    telemetry::note_op_eager();
    otrace::note_fulfill_eager();
    it.fn();
  } else {
    telemetry::count(telemetry::counter::cx_deferred_queued);
    current_persona().enqueue_deferred(
        [fn = std::move(it.fn), oc = telemetry::op_capture{},
         tid = otrace::current()]() mutable {
          otrace::note_id(tid, otrace::stage::fulfill_deferred);
          fn();
          oc.complete_deferred();
        });
  }
  return {};
}

template <typename... V, typename Fn, typename... Args, typename RemoteSend>
std::tuple<> handle_async(rpc_cx<Fn, Args...>& it, op_record<V...>&,
                          RemoteSend& rsend) {
  rsend(it);
  return {};
}

/// Process all completions of an operation that will complete
/// asynchronously; returns the tuple of requested futures and sets
/// `rec_out`. The caller launches the transfer and arranges for
/// `rec_out->fulfill(values...)` to run on the initiator during progress.
template <typename... V, typename Cxs, typename RemoteSend>
auto process_async_tuple(Cxs&& cxs, RemoteSend&& rsend,
                         op_record<V...>*& rec_out) {
  auto* rec = new op_record<V...>();
  rec->initiator = &current_persona();
  rec->wd_id = rec->issued.track();
  rec_out = rec;
  return std::apply(
      [&](auto&... item) {
        return std::tuple_cat(handle_async<V...>(item, *rec, rsend)...);
      },
      cxs.items);
}

/// A remote sender for operations that do not support remote completion
/// (gets, atomics): requesting remote_cx on them is a compile error.
struct no_remote_cx {
  template <typename Fn, typename... Args>
  void operator()(rpc_cx<Fn, Args...>&) const {
    static_assert(sizeof(Fn) == 0,
                  "remote_cx::as_rpc is only supported on rput");
  }
};

}  // namespace aspen::detail
