// One-sided remote memory access: rput / rget, scalar and bulk, with full
// completion support.
//
// Local (shared-memory-bypass) transfers complete synchronously during
// initiation; their notifications go through cx_state::process_sync_tuple,
// where eager completion applies. Transfers to ranks outside the caller's
// node (loopback conduit with a split locality model) take an
// active-message round trip; their operation completions are always
// deferred.
//
// Version emulation hooks (paper §IV-A):
//   - version_config::extra_rma_alloc reproduces the 2021.3.0 extra heap
//     allocation per directly-addressable RMA;
//   - version_config::dynamic_is_local reproduces the 2021.3.0 dynamic
//     locality check on the SMP conduit.
#pragma once

#include <cstring>

#include "core/cx_state.hpp"
#include "core/global_ptr.hpp"
#include "core/rpc.hpp"

namespace aspen {

/// RMA transfers operate on trivially copyable objects.
template <typename T>
concept rma_type = std::is_trivially_copyable_v<T>;

namespace detail {

/// Compiler barrier so the emulated legacy allocation cannot be elided.
inline void escape(void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(p) : "memory");
#else
  volatile void* sink = p;
  (void)sink;
#endif
}

/// The internal descriptor UPC++ 2021.3.0 heap-allocated for every RMA on a
/// directly-addressable global pointer (eliminated in the 2021.3.6
/// snapshot). Size mimics a small completion descriptor.
struct legacy_rma_descriptor {
  void* self;
  std::uint64_t state[5];
};

inline void legacy_extra_alloc_if_configured(const rank_context& c) {
  if (c.ver.extra_rma_alloc) {
    auto* d = new legacy_rma_descriptor;
    d->self = d;
    escape(d);
    delete d;
  }
}

/// The locality branch inside every RMA call (redundant with user-level
/// is_local checks — paper §II-C). On the SMP conduit with 2021.3.6
/// semantics the check is resolved statically. The perturbed conduit may
/// divert a shareable target down the AM path anyway (forced-async mode):
/// eager completion must degrade to the deferred remote machinery with no
/// observable difference, which is exactly what the seed-sweep harness
/// asserts.
[[nodiscard]] inline bool rma_target_local(const rank_context& c,
                                           int target) noexcept {
  if (!c.ver.dynamic_is_local &&
      c.rt->cfg().transport == gex::conduit::smp) {
    return true;
  }
  if (!c.rt->shares_memory(c.rank, target)) return false;
  return !c.rt->perturb_force_async(c.rank);
}

// --------------------------------------------------------------------------
// Active-message protocol
//
// Requests carry the reply handler to invoke, so one generic request
// handler serves every typed operation. Reply payload layout is uniform:
// [u64 record][u64 extra][data bytes].
// --------------------------------------------------------------------------

inline void send_rma_reply(rank_context& c, int initiator,
                           gex::am_handler reply_h, std::uint64_t rec,
                           std::uint64_t extra, const void* data,
                           std::size_t nbytes) {
  ser_writer w(2 * sizeof(std::uint64_t) + nbytes);
  w.write(rec);
  w.write(extra);
  if (nbytes != 0) w.write_bytes(data, nbytes);
  c.rt->send_am(initiator,
                gex::am_message(reply_h, c.rank, w.data(), w.size()));
}

/// Reply for a put: value-less acknowledgment.
inline void rma_put_reply_handler(gex::runtime&, int, int, std::byte* p,
                                  std::size_t len) {
  ser_reader r(p, len);
  auto* rec = reinterpret_cast<op_record<>*>(r.read<std::uint64_t>());
  (void)r.read<std::uint64_t>();  // extra, unused
  rec->fulfill();
}

/// Reply for a scalar get: delivers the value to the record.
template <rma_type T>
void rma_get_reply_handler(gex::runtime&, int, int, std::byte* p,
                           std::size_t len) {
  ser_reader r(p, len);
  auto* rec = reinterpret_cast<op_record<T>*>(r.read<std::uint64_t>());
  (void)r.read<std::uint64_t>();  // extra, unused
  rec->fulfill(r.read<T>());
}

/// Reply for a bulk get: copies the data into the initiator-local buffer
/// named by `extra`, then fulfills the value-less record.
inline void rma_get_bulk_reply_handler(gex::runtime&, int, int, std::byte* p,
                                       std::size_t len) {
  ser_reader r(p, len);
  auto* rec = reinterpret_cast<op_record<>*>(r.read<std::uint64_t>());
  auto* dest = reinterpret_cast<std::byte*>(r.read<std::uint64_t>());
  const std::size_t n = r.remaining();
  r.read_bytes(dest, n);
  rec->fulfill();
}

/// Request: [u64 reply_h][u64 rec][u64 dest][u64 nbytes][bytes] — apply the
/// put at the target, acknowledge.
inline void rma_put_request_handler(gex::runtime&, int /*me*/, int src,
                                    std::byte* p, std::size_t len) {
  ser_reader r(p, len);
  auto reply_h = reinterpret_cast<gex::am_handler>(r.read<std::uint64_t>());
  const auto rec = r.read<std::uint64_t>();
  auto* dest = reinterpret_cast<std::byte*>(r.read<std::uint64_t>());
  const auto nbytes = r.read<std::uint64_t>();
  r.read_bytes(dest, nbytes);
  send_rma_reply(ctx(), src, reply_h, rec, 0, nullptr, 0);
}

/// Request: [u64 reply_h][u64 rec][u64 src_addr][u64 nbytes][u64 extra] —
/// read the data at the target and ship it back (extra is echoed; bulk gets
/// use it to carry the destination buffer address).
inline void rma_get_request_handler(gex::runtime&, int /*me*/, int src,
                                    std::byte* p, std::size_t len) {
  ser_reader r(p, len);
  auto reply_h = reinterpret_cast<gex::am_handler>(r.read<std::uint64_t>());
  const auto rec = r.read<std::uint64_t>();
  auto* addr = reinterpret_cast<const std::byte*>(r.read<std::uint64_t>());
  const auto nbytes = r.read<std::uint64_t>();
  const auto extra = r.read<std::uint64_t>();
  send_rma_reply(ctx(), src, reply_h, rec, extra, addr, nbytes);
}

/// Buffers the remote-completion RPC during async injection so it can be
/// dispatched *after* the data-transfer request (AM FIFO ordering then
/// guarantees it runs after data arrival at the target).
struct buffered_remote_sender {
  int target;
  inplace_function<void(), 128> pending;

  template <typename Fn, typename... Args>
  void operator()(rpc_cx<Fn, Args...>& item) {
    assert(!pending && "at most one remote_cx per operation");
    pending = [t = target, fn = item.fn, args = std::move(item.args)] {
      send_rpc_ff_tuple(t, fn, args);
    };
  }

  void flush() {
    if (pending) pending();
  }
};

/// Immediate remote sender for the synchronous (local-bypass) path: the
/// data is already in place, so the RPC can be dispatched at once. The
/// callback still runs inside the target's progress engine (or the
/// caller's, if targeting itself), never synchronously.
struct immediate_remote_sender {
  int target;

  template <typename Fn, typename... Args>
  void operator()(rpc_cx<Fn, Args...>& item) {
    send_rpc_ff_tuple(target, item.fn, item.args);
  }
};

/// Shared implementation of scalar/bulk put.
template <typename Cxs>
auto rma_put_bytes(int target, void* dest_raw, const void* src,
                   std::size_t nbytes, Cxs&& cxs) -> cx_return_t<Cxs> {
  telemetry::span sp("rput", "rma");
  telemetry::op_scope os(telemetry::op_class::rma_put);
  otrace::op_scope ts;
  rank_context& c = ctx();
  if (rma_target_local(c, target)) {
    telemetry::count(telemetry::counter::rma_put_local);
    legacy_extra_alloc_if_configured(c);
    std::memcpy(dest_raw, src, nbytes);
    std::atomic_thread_fence(std::memory_order_release);
    immediate_remote_sender rs{target};
    return collapse_futs(process_sync_tuple<>(std::forward<Cxs>(cxs), rs));
  }
  telemetry::count(telemetry::counter::rma_put_remote);
  buffered_remote_sender rs{target, {}};
  op_record<>* rec = nullptr;
  auto futs = process_async_tuple<>(std::forward<Cxs>(cxs), rs, rec);
  ser_writer w(4 * sizeof(std::uint64_t) + nbytes);
  w.write(reinterpret_cast<std::uint64_t>(&rma_put_reply_handler));
  w.write(reinterpret_cast<std::uint64_t>(rec));
  w.write(reinterpret_cast<std::uint64_t>(dest_raw));
  w.write(static_cast<std::uint64_t>(nbytes));
  w.write_bytes(src, nbytes);
  c.rt->send_am(target, gex::am_message(&rma_put_request_handler, c.rank,
                                        w.data(), w.size()));
  rs.flush();
  return collapse_futs(std::move(futs));
}

}  // namespace detail

/// Write `value` to `dest`. Default completion: an operation future.
template <rma_type T,
          typename Cxs = detail::completions<
              detail::future_cx<detail::event_operation_t>>>
auto rput(T value, global_ptr<T> dest, Cxs cxs = operation_cx::as_future())
    -> detail::cx_return_t<Cxs> {
  return detail::rma_put_bytes(dest.where(), dest.raw(), &value, sizeof(T),
                               std::move(cxs));
}

/// Bulk put: write `n` objects from `src` to `dest`. Supports source,
/// operation and remote completion.
template <rma_type T,
          typename Cxs = detail::completions<
              detail::future_cx<detail::event_operation_t>>>
auto rput(const T* src, global_ptr<T> dest, std::size_t n,
          Cxs cxs = operation_cx::as_future()) -> detail::cx_return_t<Cxs> {
  return detail::rma_put_bytes(dest.where(), dest.raw(), src, n * sizeof(T),
                               std::move(cxs));
}

/// Read one T from `src`; the operation completion carries the value.
template <rma_type T,
          typename Cxs = detail::completions<
              detail::future_cx<detail::event_operation_t>>>
auto rget(global_ptr<T> src, Cxs cxs = operation_cx::as_future())
    -> detail::cx_return_t<Cxs, T> {
  telemetry::span sp("rget", "rma");
  telemetry::op_scope os(telemetry::op_class::rma_get);
  otrace::op_scope ts;
  detail::rank_context& c = detail::ctx();
  detail::no_remote_cx rs;
  if (detail::rma_target_local(c, src.where())) {
    telemetry::count(telemetry::counter::rma_get_local);
    detail::legacy_extra_alloc_if_configured(c);
    std::atomic_thread_fence(std::memory_order_acquire);
    T value;
    std::memcpy(&value, src.raw(), sizeof(T));
    return detail::collapse_futs(
        detail::process_sync_tuple<T>(std::move(cxs), rs, value));
  }
  telemetry::count(telemetry::counter::rma_get_remote);
  detail::op_record<T>* rec = nullptr;
  auto futs = detail::process_async_tuple<T>(std::move(cxs), rs, rec);
  ser_writer w(5 * sizeof(std::uint64_t));
  w.write(reinterpret_cast<std::uint64_t>(&detail::rma_get_reply_handler<T>));
  w.write(reinterpret_cast<std::uint64_t>(rec));
  w.write(reinterpret_cast<std::uint64_t>(src.raw()));
  w.write(static_cast<std::uint64_t>(sizeof(T)));
  w.write(std::uint64_t{0});
  c.rt->send_am(src.where(), gex::am_message(&detail::rma_get_request_handler,
                                             c.rank, w.data(), w.size()));
  return detail::collapse_futs(std::move(futs));
}

/// Bulk get: read `n` objects from `src` into the initiator-local buffer
/// `dest`. The operation completion is value-less (this is the idiom the
/// future-conjoining GUPS variant relies on — value-less futures conjoin in
/// a loop; value-carrying ones do not, paper §III-B).
template <rma_type T,
          typename Cxs = detail::completions<
              detail::future_cx<detail::event_operation_t>>>
auto rget(global_ptr<T> src, T* dest, std::size_t n,
          Cxs cxs = operation_cx::as_future()) -> detail::cx_return_t<Cxs> {
  telemetry::span sp("rget_bulk", "rma");
  telemetry::op_scope os(telemetry::op_class::rma_get);
  otrace::op_scope ts;
  detail::rank_context& c = detail::ctx();
  detail::no_remote_cx rs;
  if (detail::rma_target_local(c, src.where())) {
    telemetry::count(telemetry::counter::rma_get_local);
    detail::legacy_extra_alloc_if_configured(c);
    std::atomic_thread_fence(std::memory_order_acquire);
    std::memcpy(dest, src.raw(), n * sizeof(T));
    return detail::collapse_futs(
        detail::process_sync_tuple<>(std::move(cxs), rs));
  }
  telemetry::count(telemetry::counter::rma_get_remote);
  detail::op_record<>* rec = nullptr;
  auto futs = detail::process_async_tuple<>(std::move(cxs), rs, rec);
  ser_writer w(5 * sizeof(std::uint64_t));
  w.write(reinterpret_cast<std::uint64_t>(&detail::rma_get_bulk_reply_handler));
  w.write(reinterpret_cast<std::uint64_t>(rec));
  w.write(reinterpret_cast<std::uint64_t>(src.raw()));
  w.write(static_cast<std::uint64_t>(n * sizeof(T)));
  w.write(reinterpret_cast<std::uint64_t>(dest));
  c.rt->send_am(src.where(), gex::am_message(&detail::rma_get_request_handler,
                                             c.rank, w.data(), w.size()));
  return detail::collapse_futs(std::move(futs));
}

}  // namespace aspen
