// ASPEN — ASynchronous PGAS with Eager Notifications.
//
// Umbrella header: include this to get the full public API.
//
// Quickstart:
//
//   #include "core/aspen.hpp"
//
//   int main() {
//     aspen::spmd(4, [] {
//       auto gp = aspen::new_<int>(aspen::rank_me());
//       auto all = aspen::broadcast_vector(
//           std::vector<aspen::global_ptr<int>>{gp}, 0);  // exchange ptrs
//       aspen::future<int> f = aspen::rget(all[0]);
//       int v = f.wait();
//       ...
//     });
//   }
//
// See README.md for the architecture overview and DESIGN.md for the mapping
// onto the paper this library reproduces.
#pragma once

#include "core/allocation.hpp"
#include "core/atomic_domain.hpp"
#include "core/collectives.hpp"
#include "core/completion.hpp"
#include "core/copy.hpp"
#include "core/cx_state.hpp"
#include "core/dist_object.hpp"
#include "core/future.hpp"
#include "core/global_ptr.hpp"
#include "core/persona.hpp"
#include "core/promise.hpp"
#include "core/rma.hpp"
#include "core/rma_irregular.hpp"
#include "core/rma_strided.hpp"
#include "core/rpc.hpp"
#include "core/runtime.hpp"
#include "core/serialization.hpp"
#include "core/team.hpp"
#include "core/version.hpp"
#include "core/when_all.hpp"
