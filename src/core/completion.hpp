// Completion objects: how a program requests notification of communication
// events (paper §II-A, §III-A).
//
// Events:
//   - source completion:    the source buffer is reusable by the initiator;
//   - operation completion: the whole operation is complete (this event
//                           carries any values the operation produces);
//   - remote completion:    data has arrived at the target (RMA put only) —
//                           notified by running an RPC there.
//
// Notification kinds: futures, promises and local procedure calls for
// source/operation; remote procedure calls for remote completion. Compose
// requests with operator| :
//
//   rput(src, dest, n,
//        source_cx::as_future() | operation_cx::as_promise(p) |
//        remote_cx::as_rpc([] { ... }));
//
// This work adds explicit eagerness control (paper §III-A): the as_eager_*
// factories *permit* (never require) synchronous notification when the data
// movement completes synchronously; as_defer_* guarantees the legacy
// deferred behavior; the plain factories follow the current
// version_config::eager_default (compile ASPEN with -DASPEN_DEFER_COMPLETION
// to restore the legacy default, mirroring UPCXX_DEFER_COMPLETION).
#pragma once

#include <cstdint>
#include <tuple>
#include <utility>

#include "core/promise.hpp"

namespace aspen {

namespace detail {

struct event_source_t {};
struct event_operation_t {};
struct event_remote_t {};

enum class eagerness : std::uint8_t {
  dflt,   // follow version_config::eager_default
  eager,  // permit eager notification on synchronous completion
  defer,  // always defer to the next progress-engine entry
};

template <typename Event>
struct future_cx {
  eagerness e;
};

template <typename Event, typename... T>
struct promise_cx {
  eagerness e;
  promise<T...> pro;
};

template <typename Event, typename Fn>
struct lpc_cx {
  eagerness e;
  Fn fn;
};

template <typename Fn, typename... Args>
struct rpc_cx {
  Fn fn;
  std::tuple<Args...> args;
};

/// An ordered list of completion requests.
template <typename... Cx>
struct completions {
  std::tuple<Cx...> items;
};

template <typename... A, typename... B>
[[nodiscard]] completions<A..., B...> operator|(completions<A...> a,
                                                completions<B...> b) {
  return {std::tuple_cat(std::move(a.items), std::move(b.items))};
}

}  // namespace detail

namespace operation_cx {

/// Notification via a future, default eagerness.
[[nodiscard]] inline auto as_future() {
  using cx = detail::future_cx<detail::event_operation_t>;
  return detail::completions<cx>{{cx{detail::eagerness::dflt}}};
}
/// Notification via a future, eager permitted (paper §III-A).
[[nodiscard]] inline auto as_eager_future() {
  using cx = detail::future_cx<detail::event_operation_t>;
  return detail::completions<cx>{{cx{detail::eagerness::eager}}};
}
/// Notification via a future, guaranteed deferred (legacy semantics).
[[nodiscard]] inline auto as_defer_future() {
  using cx = detail::future_cx<detail::event_operation_t>;
  return detail::completions<cx>{{cx{detail::eagerness::defer}}};
}

template <typename... T>
[[nodiscard]] auto as_promise(promise<T...> p) {
  using cx = detail::promise_cx<detail::event_operation_t, T...>;
  return detail::completions<cx>{{cx{detail::eagerness::dflt, std::move(p)}}};
}
template <typename... T>
[[nodiscard]] auto as_eager_promise(promise<T...> p) {
  using cx = detail::promise_cx<detail::event_operation_t, T...>;
  return detail::completions<cx>{{cx{detail::eagerness::eager, std::move(p)}}};
}
template <typename... T>
[[nodiscard]] auto as_defer_promise(promise<T...> p) {
  using cx = detail::promise_cx<detail::event_operation_t, T...>;
  return detail::completions<cx>{{cx{detail::eagerness::defer, std::move(p)}}};
}

/// Run a local callback on operation completion (receives the operation's
/// values, if any).
template <typename Fn>
[[nodiscard]] auto as_lpc(Fn fn) {
  using cx = detail::lpc_cx<detail::event_operation_t, Fn>;
  return detail::completions<cx>{{cx{detail::eagerness::dflt, std::move(fn)}}};
}
template <typename Fn>
[[nodiscard]] auto as_eager_lpc(Fn fn) {
  using cx = detail::lpc_cx<detail::event_operation_t, Fn>;
  return detail::completions<cx>{{cx{detail::eagerness::eager, std::move(fn)}}};
}
template <typename Fn>
[[nodiscard]] auto as_defer_lpc(Fn fn) {
  using cx = detail::lpc_cx<detail::event_operation_t, Fn>;
  return detail::completions<cx>{{cx{detail::eagerness::defer, std::move(fn)}}};
}

}  // namespace operation_cx

namespace source_cx {

[[nodiscard]] inline auto as_future() {
  using cx = detail::future_cx<detail::event_source_t>;
  return detail::completions<cx>{{cx{detail::eagerness::dflt}}};
}
[[nodiscard]] inline auto as_eager_future() {
  using cx = detail::future_cx<detail::event_source_t>;
  return detail::completions<cx>{{cx{detail::eagerness::eager}}};
}
[[nodiscard]] inline auto as_defer_future() {
  using cx = detail::future_cx<detail::event_source_t>;
  return detail::completions<cx>{{cx{detail::eagerness::defer}}};
}

[[nodiscard]] inline auto as_promise(promise<> p) {
  using cx = detail::promise_cx<detail::event_source_t>;
  return detail::completions<cx>{{cx{detail::eagerness::dflt, std::move(p)}}};
}
[[nodiscard]] inline auto as_eager_promise(promise<> p) {
  using cx = detail::promise_cx<detail::event_source_t>;
  return detail::completions<cx>{{cx{detail::eagerness::eager, std::move(p)}}};
}
[[nodiscard]] inline auto as_defer_promise(promise<> p) {
  using cx = detail::promise_cx<detail::event_source_t>;
  return detail::completions<cx>{{cx{detail::eagerness::defer, std::move(p)}}};
}

template <typename Fn>
[[nodiscard]] auto as_lpc(Fn fn) {
  using cx = detail::lpc_cx<detail::event_source_t, Fn>;
  return detail::completions<cx>{{cx{detail::eagerness::dflt, std::move(fn)}}};
}

}  // namespace source_cx

namespace remote_cx {

/// Schedule `fn(args...)` to run on the target process after the
/// operation's data has been delivered there. `fn` must be trivially
/// copyable; `args` must be serializable.
template <typename Fn, typename... Args>
[[nodiscard]] auto as_rpc(Fn fn, Args... args) {
  using cx = detail::rpc_cx<Fn, Args...>;
  return detail::completions<cx>{
      {cx{std::move(fn), std::tuple<Args...>(std::move(args)...)}}};
}

}  // namespace remote_cx

}  // namespace aspen
