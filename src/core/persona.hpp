// aspen::persona — thread personas, cross-thread LPC mailboxes, and the
// per-thread active-persona stack.
//
// The paper's eager-vs-deferred distinction is fundamentally a statement
// about *which thread observes a completion and when*: eager notification
// fires inside the injecting call on the injecting thread, while deferred
// notification is routed through the initiator's progress engine. With one
// thread per rank that routing is invisible; personas (the UPC++ model)
// make it real. A persona is a completion target:
//
//   - every thread owns a *default persona*, created on first use and held
//     for the thread's lifetime;
//   - every rank owns a *master persona*; only the thread currently holding
//     it may poll the substrate (gex::runtime::poll) for that rank. The
//     spmd launcher acquires it on the rank thread; it can be handed to a
//     worker via liberate_master_persona() + persona_scope;
//   - a thread may hold additional personas via persona_scope (a strict
//     LIFO stack). current_persona() is the top of the stack and is the
//     persona that *initiates* operations: deferred completions
//     (as_defer_future/promise/lpc) bind to it and execute only when a
//     thread holding it enters the progress engine;
//   - persona::lpc_ff(fn) / persona::lpc(fn) enqueue a callable onto the
//     persona's MPSC mailbox from any thread; it executes on whichever
//     thread holds the persona at its next progress entry. lpc() returns a
//     future (readied on the *initiating* persona) for fn's result.
//
// Thread-safety contract: a persona's mailbox accepts pushes from any
// thread; everything else about a persona (its deferred-completion queue,
// its pooled ready cell, drain()) is touched only by the thread currently
// holding it. Holding is handed over with acquire/release semantics on the
// owner atomic, so non-atomic persona state is safely visible across a
// migration.
//
// Layering: this header sits below future.hpp (persona::lpc's definition
// lives there) and below runtime.hpp (the rank context holds a master
// persona pointer); it must not include either.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/inplace_function.hpp"
#include "core/progress.hpp"
#include "core/telemetry.hpp"
#include "gex/mpsc_queue.hpp"

namespace aspen {

template <typename... T>
class future;
class persona;
class persona_scope;

namespace detail {

/// One mailbox entry. 88 bytes of inline capture holds the lpc() wrapper
/// (callable + result cell + initiating persona); larger captures spill to
/// the heap inside inplace_function.
using lpc_task = inplace_function<void(), 88>;

struct lpc_envelope {
  lpc_task fn;
  /// Enqueued by a thread that did not hold the persona at the time
  /// (feeds the lpc_cross_thread telemetry counter at execution).
  bool cross_thread = false;
};

struct persona_tls;
[[nodiscard]] persona_tls& tls_personas() noexcept;

/// Drain every persona currently held by the calling thread (top of the
/// active stack first). Returns LPCs executed + deferred notifications
/// fired. The progress engine's post-poll phase.
std::size_t drain_active_personas();

/// future type produced by persona::lpc for a callable returning R.
template <typename R>
struct lpc_result {
  using type = future<std::decay_t<R>>;
};
template <>
struct lpc_result<void> {
  using type = future<>;
};
template <typename Fn>
using lpc_future_t =
    typename lpc_result<std::invoke_result_t<std::decay_t<Fn>&>>::type;

}  // namespace detail

/// A completion target. See the header comment for the model; see
/// docs/PERSONA.md for the user-facing rules.
class persona {
 public:
  persona() = default;
  persona(const persona&) = delete;
  persona& operator=(const persona&) = delete;
  ~persona();

  /// True iff the calling thread currently holds this persona (it is on
  /// the caller's active stack).
  [[nodiscard]] bool active_with_caller() const noexcept {
    return owner_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  /// Fire-and-forget LPC: enqueue `fn` onto this persona's mailbox; it runs
  /// on whichever thread holds the persona at its next progress entry.
  /// Callable from any thread.
  template <typename Fn>
  void lpc_ff(Fn&& fn) {
    enqueue_lpc(detail::lpc_task(std::forward<Fn>(fn)));
  }

  /// As lpc_ff, but returns a future for fn's result. The future is
  /// *initiator-bound*: it becomes ready on the calling thread's current
  /// persona, via a return-leg LPC if the target executes on another
  /// thread. fn must not return a future. Defined in future.hpp.
  template <typename Fn>
  auto lpc(Fn fn) -> detail::lpc_future_t<Fn>;

  /// This persona's deferred-completion queue (the progress queue the
  /// paper's legacy semantics route every notification through). Only the
  /// holding thread may touch it.
  [[nodiscard]] detail::progress_queue& deferred_queue() noexcept {
    return deferred_;
  }

  /// Enqueue a deferred completion notification. Injection-time only: the
  /// caller must hold this persona (deferred completions bind to the
  /// *initiating* persona, and initiation happens under it).
  void enqueue_deferred(detail::pq_task t) {
    assert(active_with_caller() &&
           "deferred completions must be enqueued by the persona holder");
    deferred_.push(std::move(t));
  }

  /// Execute pending mailbox LPCs, then fire the deferred-completion
  /// queue. Caller must hold this persona. Reentrant (an LPC body may
  /// re-enter progress).
  std::size_t drain();

  /// LPCs currently queued in this persona's mailbox (approximate;
  /// producers race). Read by the live-telemetry gauges.
  [[nodiscard]] std::size_t mailbox_depth() const noexcept {
    return mailbox_.approx_size();
  }

  // --- internal wiring -----------------------------------------------------

  /// Take/release the persona for the calling thread. acquire blocks
  /// (spinning) until the current holder releases. persona_scope is the
  /// public face; spmd uses these directly so a liberated master persona
  /// can be reclaimed at shutdown.
  void acquire_for_caller() noexcept;
  void release_from_caller() noexcept;

  /// Mirror holder changes into an external atomic (gex::rank_state::
  /// master_holder, consulted by the substrate's poll assertion).
  void set_holder_mirror(std::atomic<std::thread::id>* m) noexcept {
    holder_mirror_ = m;
  }

  /// Slot for this persona's pooled immortal ready cell<> (see
  /// future_cell.hpp::pooled_ready_cell). Type-erased to keep this header
  /// below future_cell in the include order.
  [[nodiscard]] void* ready_cell_slot() const noexcept { return ready_cell_; }
  void set_ready_cell(void* c, void (*deleter)(void*) noexcept) noexcept {
    assert(ready_cell_ == nullptr);
    ready_cell_ = c;
    ready_cell_deleter_ = deleter;
  }

 private:
  friend class persona_scope;
  friend struct detail::persona_tls;

  void enqueue_lpc(detail::lpc_task t) {
    detail::lpc_envelope env;
    env.cross_thread = !active_with_caller();
    env.fn = std::move(t);
    telemetry::count(telemetry::counter::lpc_enqueued);
    mailbox_.push(std::move(env));
    telemetry::note_lpc_mailbox_depth(mailbox_.approx_size());
  }

  void set_owner(std::thread::id id, std::memory_order mo) noexcept {
    owner_.store(id, mo);
    if (holder_mirror_ != nullptr) holder_mirror_->store(id, mo);
  }

  gex::mpsc_queue<detail::lpc_envelope> mailbox_;
  detail::progress_queue deferred_;
  /// The holding thread, or a default-constructed id when unheld.
  /// Release-store on release / acquire-CAS on acquire carries the
  /// happens-before edge that makes the non-atomic state above safe to
  /// hand across threads.
  std::atomic<std::thread::id> owner_{};
  std::atomic<std::thread::id>* holder_mirror_ = nullptr;
  void* ready_cell_ = nullptr;
  void (*ready_cell_deleter_)(void*) noexcept = nullptr;
  /// Scratch for drain(), with a reentrancy guard (an LPC that re-enters
  /// progress must not clobber the in-flight buffer).
  std::vector<detail::lpc_envelope> drain_buf_;
  bool draining_ = false;
};

/// RAII activation: pushes `p` onto the calling thread's active stack for
/// the scope's lifetime, making it current_persona(). Blocks until any
/// other holding thread releases. Nestable: re-pushing a persona the
/// caller already holds is allowed (the persona stays held until the
/// outermost scope exits).
class persona_scope {
 public:
  explicit persona_scope(persona& p);
  ~persona_scope();
  persona_scope(const persona_scope&) = delete;
  persona_scope& operator=(const persona_scope&) = delete;

 private:
  persona* p_;
  bool held_before_;  // nested activation: do not release on exit
};

/// The calling thread's default persona (created on first use, held for
/// the thread's lifetime; always at the bottom of the active stack).
[[nodiscard]] persona& default_persona() noexcept;

/// The persona that operations initiated by the calling thread bind to:
/// the top of the active-persona stack (the default persona if no scope is
/// active).
[[nodiscard]] persona& current_persona() noexcept;

namespace detail {

/// Per-thread persona state: the default persona and the active stack.
struct persona_tls {
  persona default_persona;
  /// Active stack, bottom (default) to top (current). Raw pointers: the
  /// stack never owns; scopes guarantee LIFO removal.
  std::vector<persona*> stack;

  persona_tls();
};

}  // namespace detail
}  // namespace aspen
