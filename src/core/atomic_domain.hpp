// atomic_domain<T> — remote atomic memory operations.
//
// An atomic domain is constructed collectively with the set of opcodes it
// will perform (mirroring UPC++/GASNet-EX, where the set determines the
// coherence protocol — e.g. whether NIC offload is possible). All atomics
// go through the domain; unlike RMA they can never be manually localized,
// because correctness requires a single coherency domain (paper §II-B).
//
// Three families of operations:
//   - value-producing ("fetching"): fetch_add, exchange, load, ... —
//     the operation completion carries the fetched value, so even eager
//     completion must allocate a cell for future notification;
//   - side-effect-only: add, store, bit_xor, ... — value-less completions;
//   - NEW non-fetching variants of fetching ops (paper §III-B):
//     fetch_add_into(gp, v, dst) etc. deposit the fetched value through
//     `dst` and complete value-less, enabling zero-allocation eager
//     completion and loop-conjoinable futures. Available only when
//     version_config::nonfetching_atomics is set (they did not exist in
//     2021.3.0).
#pragma once

#include <initializer_list>
#include <stdexcept>
#include <vector>

#include "core/rma.hpp"
#include "gex/amo.hpp"

namespace aspen {

namespace detail {

// Reply handlers (run on the initiator inside progress).

template <typename T>
void amo_fetch_reply_handler(gex::runtime&, int, int, std::byte* p,
                             std::size_t len) {
  ser_reader r(p, len);
  auto* rec = reinterpret_cast<op_record<T>*>(r.read<std::uint64_t>());
  (void)r.read<std::uint64_t>();  // extra, unused
  rec->fulfill(r.read<T>());
}

inline void amo_void_reply_handler(gex::runtime&, int, int, std::byte* p,
                                   std::size_t len) {
  ser_reader r(p, len);
  auto* rec = reinterpret_cast<op_record<>*>(r.read<std::uint64_t>());
  rec->fulfill();
}

/// Non-fetching variant: deposit the fetched value through the local
/// destination pointer carried in `extra`, then complete value-less.
template <typename T>
void amo_into_reply_handler(gex::runtime&, int, int, std::byte* p,
                            std::size_t len) {
  ser_reader r(p, len);
  auto* rec = reinterpret_cast<op_record<>*>(r.read<std::uint64_t>());
  auto* dst = reinterpret_cast<T*>(r.read<std::uint64_t>());
  *dst = r.read<T>();
  rec->fulfill();
}

/// Request handler (runs on the owner): applies the op in the owner's
/// coherency domain and ships the prior value back.
/// Payload: [u64 reply_h][u64 rec][u64 addr][u64 extra][u8 op][T op1][T op2]
template <typename T>
void amo_request_handler(gex::runtime&, int /*me*/, int src, std::byte* p,
                         std::size_t len) {
  ser_reader r(p, len);
  auto reply_h = reinterpret_cast<gex::am_handler>(r.read<std::uint64_t>());
  const auto rec = r.read<std::uint64_t>();
  auto* addr = reinterpret_cast<T*>(r.read<std::uint64_t>());
  const auto extra = r.read<std::uint64_t>();
  const auto op = static_cast<gex::amo_op>(r.read<std::uint8_t>());
  const T op1 = r.read<T>();
  const T op2 = r.read<T>();
  const T old = gex::apply_amo(addr, op, op1, op2);
  send_rma_reply(ctx(), src, reply_h, rec, extra, &old, sizeof(T));
}

template <typename T>
void send_amo_request(rank_context& c, int owner, gex::am_handler reply_h,
                      void* rec, std::uint64_t extra, T* addr,
                      gex::amo_op op, T op1, T op2) {
  ser_writer w(4 * sizeof(std::uint64_t) + 1 + 2 * sizeof(T));
  w.write(reinterpret_cast<std::uint64_t>(reply_h));
  w.write(reinterpret_cast<std::uint64_t>(rec));
  w.write(reinterpret_cast<std::uint64_t>(addr));
  w.write(extra);
  w.write(static_cast<std::uint8_t>(op));
  w.write(op1);
  w.write(op2);
  c.rt->send_am(owner, gex::am_message(&amo_request_handler<T>, c.rank,
                                       w.data(), w.size()));
}

}  // namespace detail

template <gex::amo_type T>
class atomic_domain {
 public:
  /// Construct collectively with the set of operations this domain will
  /// perform. Issuing an unregistered op is a logic error.
  explicit atomic_domain(std::initializer_list<gex::amo_op> ops)
      : atomic_domain(std::vector<gex::amo_op>(ops)) {}

  explicit atomic_domain(const std::vector<gex::amo_op>& ops) {
    for (gex::amo_op op : ops) {
      if constexpr (std::is_floating_point_v<T>) {
        if (!gex::amo_valid_for_floating(op))
          throw std::invalid_argument(
              "atomic_domain<floating>: bitwise op not supported");
      }
      mask_ |= bit(op);
    }
  }

  atomic_domain(const atomic_domain&) = delete;
  atomic_domain& operator=(const atomic_domain&) = delete;
  atomic_domain(atomic_domain&&) noexcept = default;
  atomic_domain& operator=(atomic_domain&&) noexcept = default;

  // ---- value-producing (fetching) operations -----------------------------

  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto load(global_ptr<T> gp, Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::load, gp, T{}, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_add(global_ptr<T> gp, T v,
                 Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::fadd, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_sub(global_ptr<T> gp, T v,
                 Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::fsub, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_inc(global_ptr<T> gp, Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::finc, gp, T{}, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_dec(global_ptr<T> gp, Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::fdec, gp, T{}, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_xor(global_ptr<T> gp, T v,
                 Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::fxor, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_and(global_ptr<T> gp, T v,
                 Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::fand, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_or(global_ptr<T> gp, T v,
                Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::fbor, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto exchange(global_ptr<T> gp, T v,
                Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::swap, gp, v, T{}, std::move(cxs));
  }
  /// Compare-and-swap; the completion carries the *prior* value (equal to
  /// `expected` iff the swap happened).
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto compare_exchange(global_ptr<T> gp, T expected, T desired,
                        Cxs cxs = operation_cx::as_future()) const {
    return fetch_op(gex::amo_op::cswap, gp, expected, desired,
                    std::move(cxs));
  }

  // ---- side-effect-only operations (value-less completion) ---------------

  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto store(global_ptr<T> gp, T v, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::store, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto add(global_ptr<T> gp, T v, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::add, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto sub(global_ptr<T> gp, T v, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::sub, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto inc(global_ptr<T> gp, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::inc, gp, T{}, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto dec(global_ptr<T> gp, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::dec, gp, T{}, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto bit_xor(global_ptr<T> gp, T v, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::bxor, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto bit_and(global_ptr<T> gp, T v, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::band, gp, v, T{}, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto bit_or(global_ptr<T> gp, T v, Cxs cxs = operation_cx::as_future()) const {
    return void_op(gex::amo_op::bor, gp, v, T{}, std::move(cxs));
  }

  // ---- NEW: non-fetching variants that deposit the value to memory -------

  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto load_into(global_ptr<T> gp, T* dst,
                 Cxs cxs = operation_cx::as_future()) const {
    return into_op(gex::amo_op::load, gp, T{}, T{}, dst, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_add_into(global_ptr<T> gp, T v, T* dst,
                      Cxs cxs = operation_cx::as_future()) const {
    return into_op(gex::amo_op::fadd, gp, v, T{}, dst, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_sub_into(global_ptr<T> gp, T v, T* dst,
                      Cxs cxs = operation_cx::as_future()) const {
    return into_op(gex::amo_op::fsub, gp, v, T{}, dst, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_inc_into(global_ptr<T> gp, T* dst,
                      Cxs cxs = operation_cx::as_future()) const {
    return into_op(gex::amo_op::finc, gp, T{}, T{}, dst, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto fetch_xor_into(global_ptr<T> gp, T v, T* dst,
                      Cxs cxs = operation_cx::as_future()) const {
    return into_op(gex::amo_op::fxor, gp, v, T{}, dst, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto exchange_into(global_ptr<T> gp, T v, T* dst,
                     Cxs cxs = operation_cx::as_future()) const {
    return into_op(gex::amo_op::swap, gp, v, T{}, dst, std::move(cxs));
  }
  template <typename Cxs = detail::completions<
                detail::future_cx<detail::event_operation_t>>>
  auto compare_exchange_into(global_ptr<T> gp, T expected, T desired, T* dst,
                             Cxs cxs = operation_cx::as_future()) const {
    return into_op(gex::amo_op::cswap, gp, expected, desired, dst,
                   std::move(cxs));
  }

 private:
  static constexpr std::uint32_t bit(gex::amo_op op) noexcept {
    return std::uint32_t{1} << static_cast<unsigned>(op);
  }

  void check_registered(gex::amo_op op) const {
    if ((mask_ & bit(op)) == 0)
      throw std::logic_error(
          "atomic_domain: operation was not declared at construction");
  }

  template <typename Cxs>
  auto fetch_op(gex::amo_op op, global_ptr<T> gp, T op1, T op2,
                Cxs cxs) const -> detail::cx_return_t<Cxs, T> {
    check_registered(op);
    telemetry::span sp("amo_fetch", "amo");
    telemetry::op_scope os(telemetry::op_class::amo);
    otrace::op_scope ts;
    telemetry::count(telemetry::counter::amo_fetching);
    detail::rank_context& c = detail::ctx();
    detail::no_remote_cx rs;
    if (detail::rma_target_local(c, gp.where())) {
      const T old = gex::apply_amo(gp.raw(), op, op1, op2);
      return detail::collapse_futs(
          detail::process_sync_tuple<T>(std::move(cxs), rs, old));
    }
    detail::op_record<T>* rec = nullptr;
    auto futs = detail::process_async_tuple<T>(std::move(cxs), rs, rec);
    detail::send_amo_request<T>(c, gp.where(),
                                &detail::amo_fetch_reply_handler<T>, rec, 0,
                                gp.raw(), op, op1, op2);
    return detail::collapse_futs(std::move(futs));
  }

  template <typename Cxs>
  auto void_op(gex::amo_op op, global_ptr<T> gp, T op1, T op2,
               Cxs cxs) const -> detail::cx_return_t<Cxs> {
    check_registered(op);
    telemetry::span sp("amo_void", "amo");
    telemetry::op_scope os(telemetry::op_class::amo);
    otrace::op_scope ts;
    telemetry::count(telemetry::counter::amo_sideeffect);
    detail::rank_context& c = detail::ctx();
    detail::no_remote_cx rs;
    if (detail::rma_target_local(c, gp.where())) {
      (void)gex::apply_amo(gp.raw(), op, op1, op2);
      return detail::collapse_futs(
          detail::process_sync_tuple<>(std::move(cxs), rs));
    }
    detail::op_record<>* rec = nullptr;
    auto futs = detail::process_async_tuple<>(std::move(cxs), rs, rec);
    detail::send_amo_request<T>(c, gp.where(),
                                &detail::amo_void_reply_handler, rec, 0,
                                gp.raw(), op, op1, op2);
    return detail::collapse_futs(std::move(futs));
  }

  template <typename Cxs>
  auto into_op(gex::amo_op op, global_ptr<T> gp, T op1, T op2, T* dst,
               Cxs cxs) const -> detail::cx_return_t<Cxs> {
    check_registered(op);
    telemetry::span sp("amo_into", "amo");
    telemetry::op_scope os(telemetry::op_class::amo);
    otrace::op_scope ts;
    telemetry::count(telemetry::counter::amo_nonfetching);
    detail::rank_context& c = detail::ctx();
    if (!c.ver.nonfetching_atomics)
      throw std::logic_error(
          "non-fetching atomics are not available in this library version "
          "(introduced after 2021.3.0)");
    detail::no_remote_cx rs;
    if (detail::rma_target_local(c, gp.where())) {
      *dst = gex::apply_amo(gp.raw(), op, op1, op2);
      return detail::collapse_futs(
          detail::process_sync_tuple<>(std::move(cxs), rs));
    }
    detail::op_record<>* rec = nullptr;
    auto futs = detail::process_async_tuple<>(std::move(cxs), rs, rec);
    detail::send_amo_request<T>(c, gp.where(),
                                &detail::amo_into_reply_handler<T>, rec,
                                reinterpret_cast<std::uint64_t>(dst),
                                gp.raw(), op, op1, op2);
    return detail::collapse_futs(std::move(futs));
  }

  std::uint32_t mask_ = 0;
};

}  // namespace aspen
