#include "core/team.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "shm/mapper.hpp"

namespace aspen {

namespace detail {

namespace {

// (world, parent team uid, collective id, color)
using registry_key =
    std::tuple<const void*, std::uint64_t, std::uint64_t, int>;

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<registry_key, std::weak_ptr<team_shared>>& registry() {
  static std::map<registry_key, std::weak_ptr<team_shared>> reg;
  return reg;
}

constexpr std::uint64_t kWorldTeamId = ~std::uint64_t{0};

std::shared_ptr<team_shared> get_or_create_keyed(
    const registry_key& key, const std::vector<int>& members) {
  std::lock_guard<std::mutex> g(registry_mutex());
  auto& reg = registry();
  // Purge expired entries opportunistically (setup path only).
  for (auto it = reg.begin(); it != reg.end();) {
    if (it->second.expired())
      it = reg.erase(it);
    else
      ++it;
  }
  auto it = reg.find(key);
  if (it != reg.end()) {
    if (auto sp = it->second.lock()) {
      assert(sp->members == members && "team id collision");
      return sp;
    }
  }
  auto sp = std::make_shared<team_shared>(members);
  static std::uint64_t next_uid = 1;
  sp->uid = next_uid++;  // under registry_mutex
  reg[key] = sp;
  return sp;
}

}  // namespace

std::shared_ptr<team_shared> team_registry_get_or_create(
    std::uint64_t id, const std::vector<int>& members) {
  return get_or_create_keyed({ctx().w, 0, id, 0}, members);
}

namespace {

/// FNV-1a over a stream of u64 words; derives child-team wire keys that
/// every member computes identically without any central allocation.
std::uint64_t mix_u64(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

constexpr std::uint64_t kWorldTeamWireKey = 0xA5C0000000000002ull;

}  // namespace

void team_rendezvous(team_shared& ts) {
  if (coll_wire_active()) {
    (void)coll_wire_exchange(ts.wire_key, ts.wire_seq++, ts.members, {});
    return;
  }
  const int n = static_cast<int>(ts.members.size());
  const std::uint64_t my_phase = ts.phase.load(std::memory_order_relaxed);
  if (ts.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
    ts.arrived.store(0, std::memory_order_relaxed);
    ts.phase.fetch_add(1, std::memory_order_release);
  } else {
    for (std::size_t idle = 0;
         ts.phase.load(std::memory_order_acquire) == my_phase;) {
      if (aspen::progress() == 0) {
        if (++idle >= 64) wait_yield();
      } else {
        idle = 0;
      }
    }
  }
}

}  // namespace detail

team team::world() {
  detail::rank_context& c = detail::ctx();
  std::vector<int> members(static_cast<std::size_t>(c.rt->nranks()));
  for (int r = 0; r < c.rt->nranks(); ++r)
    members[static_cast<std::size_t>(r)] = r;
  auto shared = detail::get_or_create_keyed(
      {c.w, 0, detail::kWorldTeamId, 0}, members);
  shared->wire_key = detail::kWorldTeamWireKey;
  return team(std::move(shared), c.rank);
}

team team::split(int color, int key) const {
  if (color < 0) throw std::invalid_argument("team::split: color must be >= 0");
  detail::rank_context& c = detail::ctx();
  const std::uint64_t id = c.next_collective_id++;

  // Exchange (color, key) among the members of *this* team via its own
  // contribution slots. Two-phase: everyone publishes, everyone reads.
  struct entry {
    int color;
    int key;
  };
  static_assert(sizeof(entry) <= detail::coll_state::kSlotBytes);
  entry mine{color, key};
  std::vector<std::pair<entry, int>> all;  // (entry, world rank)
  all.reserve(shared_->members.size());
  if (detail::coll_wire_active()) {
    std::vector<std::byte> blob(sizeof(entry));
    std::memcpy(blob.data(), &mine, sizeof(entry));
    auto blobs = detail::coll_wire_exchange(
        shared_->wire_key, shared_->wire_seq++, shared_->members, blob);
    for (std::size_t r = 0; r < shared_->members.size(); ++r) {
      entry e{};
      std::memcpy(&e, blobs[r].data(), sizeof(entry));
      all.emplace_back(e, shared_->members[r]);
    }
  } else {
    std::memcpy(shared_->contrib[static_cast<std::size_t>(my_rank_)].data,
                &mine, sizeof(entry));
    detail::team_rendezvous(*shared_);
    for (std::size_t r = 0; r < shared_->members.size(); ++r) {
      entry e{};
      std::memcpy(&e, shared_->contrib[r].data, sizeof(entry));
      all.emplace_back(e, shared_->members[r]);
    }
    detail::team_rendezvous(*shared_);
  }

  std::vector<int> members;
  for (const auto& [e, wr] : all)
    if (e.color == color) members.push_back(wr);
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    auto key_of = [&](int w) {
      for (const auto& [e, wr] : all)
        if (wr == w) return e.key;
      return 0;
    };
    return key_of(a) < key_of(b);
  });

  auto shared =
      detail::get_or_create_keyed({c.w, shared_->uid, id, color}, members);
  // Wire identity: every member derives the same key from collectively-
  // known inputs (the per-process registry uid cannot serve — it is not
  // synchronized across processes).
  std::uint64_t wk = detail::mix_u64(shared_->wire_key, id);
  wk = detail::mix_u64(wk, static_cast<std::uint64_t>(color));
  for (int m : members) wk = detail::mix_u64(wk, static_cast<std::uint64_t>(m));
  shared->wire_key = wk;
  int my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i)
    if (members[i] == c.rank) my_new_rank = static_cast<int>(i);
  assert(my_new_rank >= 0);

  team result(std::move(shared), my_new_rank);
  // Hold the parent rendezvous until every member has attached, so no
  // member can observe (and expire) a half-constructed registry entry.
  detail::team_rendezvous(*shared_);
  return result;
}

team local_team() {
  detail::rank_context& c = detail::ctx();
  // Color = pseudo-node index under the active locality model.
  const auto& cfg = c.rt->cfg();
  int color = 0;
  if (cfg.transport == gex::conduit::tcp) {
    // Every rank is its own process: nobody shares memory with anybody.
    color = c.rank;
  } else if (cfg.transport == gex::conduit::shm) {
    // Colors must agree collectively, and shares_memory() is transitive
    // here only when the whole job is mapped: one local team iff every
    // rank mapped every other, singleton teams otherwise (partial maps
    // would give overlapping-but-unequal neighborhoods).
    const auto* mp = shm::mapper::instance();
    color = mp != nullptr && mp->fully_mapped() ? 0 : c.rank;
  } else if (cfg.transport != gex::conduit::smp &&
             cfg.locality.node_size != 0) {
    color = static_cast<int>(static_cast<std::size_t>(c.rank) /
                             cfg.locality.node_size);
  }
  return team::world().split(color, c.rank);
}

}  // namespace aspen
