#include "core/telemetry_live.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "core/log.hpp"

namespace aspen::telemetry::live {

// ---------------------------------------------------------------------------
// Flat field view of a snapshot
// ---------------------------------------------------------------------------

namespace {

std::uint64_t field_get(const snapshot& s, std::size_t i) noexcept {
  if (i >= kLatFieldBase) {
    const std::size_t j = i - kLatFieldBase;
    const lat_hist& h = s.lat[j / (kLatBuckets + 1)];
    const std::size_t k = j % (kLatBuckets + 1);
    return k < kLatBuckets ? h.buckets[k] : h.max_ns;
  }
  if (i < kCounterCount) return s.counters[i];
  i -= kCounterCount;
  if (i < kPqBatchBuckets) return s.pq_fire_hist[i];
  switch (i - kPqBatchBuckets) {
    case 0: return s.pq_high_water;
    case 1: return s.pq_reserve_growths;
    case 2: return s.pq_total_fired;
    default: return s.lpc_mailbox_high_water;
  }
}

void field_set(snapshot& s, std::size_t i, std::uint64_t v) noexcept {
  if (i >= kLatFieldBase) {
    const std::size_t j = i - kLatFieldBase;
    lat_hist& h = s.lat[j / (kLatBuckets + 1)];
    const std::size_t k = j % (kLatBuckets + 1);
    if (k < kLatBuckets) {
      h.buckets[k] = v;
    } else {
      h.max_ns = v;
    }
    return;
  }
  if (i < kCounterCount) {
    s.counters[i] = v;
    return;
  }
  i -= kCounterCount;
  if (i < kPqBatchBuckets) {
    s.pq_fire_hist[i] = v;
    return;
  }
  switch (i - kPqBatchBuckets) {
    case 0: s.pq_high_water = v; break;
    case 1: s.pq_reserve_growths = v; break;
    case 2: s.pq_total_fired = v; break;
    default: s.lpc_mailbox_high_water = v; break;
  }
}

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

bool get_varint(const std::byte*& p, const std::byte* end,
                std::uint64_t* out) {
  std::uint64_t r = 0;
  for (int shift = 0; p < end && shift < 64; shift += 7) {
    const auto b = std::to_integer<std::uint8_t>(*p++);
    r |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *out = r;
      return true;
    }
  }
  return false;  // truncated or overlong
}

}  // namespace

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

void encode_update(const snapshot& delta, const gauges& g,
                   std::vector<std::byte>& out) {
  std::uint64_t nonzero = 0;
  for (std::size_t i = 0; i < kFieldCount; ++i)
    if (field_get(delta, i) != 0) ++nonzero;
  put_varint(out, nonzero);
  for (std::size_t i = 0; i < kFieldCount; ++i) {
    const std::uint64_t v = field_get(delta, i);
    if (v == 0) continue;
    put_varint(out, i);
    put_varint(out, v);
  }
  put_varint(out, g.sendq_bytes);
  put_varint(out, g.sendq_high_water);
  put_varint(out, g.staged_msgs);
  put_varint(out, g.lpc_mailbox_depth);
  put_varint(out, g.backend);
  put_varint(out, g.wd_state);
}

bool decode_update(const void* data, std::size_t len, snapshot* delta,
                   gauges* g) {
  const auto* p = static_cast<const std::byte*>(data);
  const std::byte* end = p + len;
  std::uint64_t n = 0;
  if (!get_varint(p, end, &n) || n > kFieldCount) return false;
  snapshot s{};
  std::uint64_t prev_idx = 0;
  bool first = true;
  for (std::uint64_t k = 0; k < n; ++k) {
    std::uint64_t idx = 0, val = 0;
    if (!get_varint(p, end, &idx) || !get_varint(p, end, &val)) return false;
    if (idx >= kFieldCount) return false;
    if (!first && idx <= prev_idx) return false;  // canonical form only
    if (val == 0) return false;                   // zeros are never encoded
    field_set(s, idx, val);
    prev_idx = idx;
    first = false;
  }
  gauges gg;
  if (!get_varint(p, end, &gg.sendq_bytes) ||
      !get_varint(p, end, &gg.sendq_high_water) ||
      !get_varint(p, end, &gg.staged_msgs) ||
      !get_varint(p, end, &gg.lpc_mailbox_depth) ||
      !get_varint(p, end, &gg.backend) ||
      !get_varint(p, end, &gg.wd_state))
    return false;
  if (p != end) return false;  // trailing garbage
  if (delta != nullptr) *delta = s;
  if (g != nullptr) *g = gg;
  return true;
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

std::uint32_t interval_ms() noexcept {
  static const std::uint32_t v = [] {
    const char* s = std::getenv("ASPEN_TELEMETRY_INTERVAL_MS");
    if (s == nullptr || *s == '\0') return 0u;
    char* end = nullptr;
    const unsigned long r = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0') {
      aspen::log(log_level::warn,
                 "telemetry: ignoring unparsable ASPEN_TELEMETRY_INTERVAL_MS"
                 "=\"%s\"",
                 s);
      return 0u;
    }
    return r > 3'600'000ul ? 3'600'000u : static_cast<std::uint32_t>(r);
  }();
  return v;
}

bool enabled() noexcept { return interval_ms() != 0; }

const char* trace_base() noexcept {
  static const std::string base = [] {
    const char* s = std::getenv("ASPEN_TELEMETRY_TRACE");
    return std::string(s == nullptr ? "" : s);
  }();
  return base.empty() ? nullptr : base.c_str();
}

// ---------------------------------------------------------------------------
// Producer state
// ---------------------------------------------------------------------------

namespace {

struct producer {
  std::mutex mu;
  snapshot shipped;  ///< cumulative totals as of the last capture
};

/// Leaked like the counter registry: a rank may ship its final frame during
/// static destruction ordering no one controls.
producer& prod() noexcept {
  static producer* p = new producer;
  return *p;
}

}  // namespace

snapshot take_update_delta() {
  producer& p = prod();
  std::lock_guard<std::mutex> lk(p.mu);
  const snapshot cur = aggregate();
  const snapshot d = cur - p.shipped;
  p.shipped = cur;
  return d;
}

snapshot capture_total() {
  producer& p = prod();
  std::lock_guard<std::mutex> lk(p.mu);
  p.shipped = aggregate();
  return p.shipped;
}

snapshot shipped_total() {
  producer& p = prod();
  std::lock_guard<std::mutex> lk(p.mu);
  return p.shipped;
}

// ---------------------------------------------------------------------------
// Collector state
// ---------------------------------------------------------------------------

namespace {

struct collector {
  std::mutex mu;
  int nranks = 0;
  std::vector<snapshot> totals;
  std::vector<gauges> gauge;
  std::vector<std::uint64_t> updates;
  int finals_this_epoch = 0;
};

collector& coll() noexcept {
  static collector* c = new collector;
  return *c;
}

}  // namespace

void collector_reset(int nranks) {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  c.nranks = nranks;
  c.totals.assign(static_cast<std::size_t>(nranks), snapshot{});
  c.gauge.assign(static_cast<std::size_t>(nranks), gauges{});
  c.updates.assign(static_cast<std::size_t>(nranks), 0);
  c.finals_this_epoch = 0;
}

void collector_accumulate(int rank, const snapshot& delta, const gauges& g,
                          bool final_flush) {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  if (rank < 0 || rank >= c.nranks) return;
  const auto r = static_cast<std::size_t>(rank);
  merge_into(c.totals[r], delta);
  c.gauge[r] = g;
  ++c.updates[r];
  if (final_flush) ++c.finals_this_epoch;
}

void collector_note_local(const snapshot& total, const gauges& g) {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  if (c.nranks == 0) return;
  c.totals[0] = total;
  c.gauge[0] = g;
  ++c.updates[0];
}

int collector_finals() {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  return c.finals_this_epoch;
}

void collector_begin_epoch() {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  c.finals_this_epoch = 0;
}

int collector_ranks() {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  return c.nranks;
}

snapshot job_snapshot() {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  snapshot job{};
  for (const snapshot& s : c.totals) merge_into(job, s);
  return job;
}

snapshot rank_snapshot(int rank) {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  if (rank < 0 || rank >= c.nranks) return {};
  return c.totals[static_cast<std::size_t>(rank)];
}

gauges rank_gauges(int rank) {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  if (rank < 0 || rank >= c.nranks) return {};
  return c.gauge[static_cast<std::size_t>(rank)];
}

std::uint64_t rank_updates(int rank) {
  collector& c = coll();
  std::lock_guard<std::mutex> lk(c.mu);
  if (rank < 0 || rank >= c.nranks) return 0;
  return c.updates[static_cast<std::size_t>(rank)];
}

}  // namespace aspen::telemetry::live
