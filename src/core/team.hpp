// Teams — subsets of ranks with their own rank numbering and collectives.
//
// A team is created collectively (by splitting an existing team, as in
// upcxx::team::split / MPI_Comm_split) and provides barrier / broadcast /
// allreduce restricted to its members. The world team always exists.
//
// Implementation: each team's shared coordination state (arrival counters,
// contribution slots) lives in a process-wide registry keyed by a
// collectively-agreed team id; the first member to arrive materializes the
// state, the others attach. Team handles are rank-local values.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "core/collectives.hpp"
#include "core/runtime.hpp"

namespace aspen {

namespace detail {

/// Shared coordination state of one team (same shape as the world's
/// coll_state, sized to the team).
struct team_shared {
  /// Process-unique identity, used to scope child-team registry keys to
  /// their parent (sibling teams split concurrently share collective ids).
  std::uint64_t uid = 0;
  std::atomic<int> arrived{0};
  std::atomic<std::uint64_t> phase{0};
  std::vector<coll_state::slot> contrib;
  std::vector<std::byte> bulk_buf;
  std::vector<int> members;  // world ranks in team-rank order
  /// Socket-conduit identity: a collectively-derived key every member
  /// computes identically (world constant for the world team, a hash of
  /// (parent key, collective id, color, members) for splits), plus this
  /// team's own wire-collective sequence.
  std::uint64_t wire_key = 0;
  std::uint64_t wire_seq = 0;

  explicit team_shared(std::vector<int> m)
      : contrib(m.size()), members(std::move(m)) {}
};

/// Process-wide team registry (per world). Access is mutex-guarded; team
/// creation is a setup-path operation, never on the critical path.
[[nodiscard]] std::shared_ptr<team_shared> team_registry_get_or_create(
    std::uint64_t id, const std::vector<int>& members);

/// Rendezvous on a team's own phase counter, servicing progress.
void team_rendezvous(team_shared& ts);

}  // namespace detail

class team {
 public:
  /// The team containing every rank (cheap to construct; no registry use).
  [[nodiscard]] static team world();

  /// Collectively split this team: members with the same `color` form a new
  /// team, ordered by (key, world rank). Every member of *this* team must
  /// call split with some color. Color must be >= 0.
  [[nodiscard]] team split(int color, int key) const;

  [[nodiscard]] int rank_me() const noexcept { return my_rank_; }
  [[nodiscard]] int rank_n() const noexcept {
    return static_cast<int>(shared_->members.size());
  }

  /// Translate a team rank to the world rank.
  [[nodiscard]] int to_world(int team_rank) const noexcept {
    return shared_->members[static_cast<std::size_t>(team_rank)];
  }
  /// Translate a world rank to this team's numbering (-1 if not a member).
  [[nodiscard]] int from_world(int world_rank) const noexcept {
    for (std::size_t i = 0; i < shared_->members.size(); ++i)
      if (shared_->members[i] == world_rank) return static_cast<int>(i);
    return -1;
  }

  /// Barrier over this team's members only.
  void barrier() const { detail::team_rendezvous(*shared_); }

  /// Broadcast a trivially copyable value from team rank `root`.
  template <typename T>
  [[nodiscard]] T broadcast(T value, int root) const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= detail::coll_state::kSlotBytes);
    if (detail::coll_wire_active()) {
      std::vector<std::byte> mine(sizeof(T));
      if (my_rank_ == root) std::memcpy(mine.data(), &value, sizeof(T));
      auto all = detail::coll_wire_exchange(
          shared_->wire_key, shared_->wire_seq++, shared_->members, mine);
      T out;
      std::memcpy(&out, all[static_cast<std::size_t>(root)].data(),
                  sizeof(T));
      return out;
    }
    if (my_rank_ == root)
      std::memcpy(shared_->contrib[static_cast<std::size_t>(root)].data,
                  &value, sizeof(T));
    detail::team_rendezvous(*shared_);
    T out;
    std::memcpy(&out, shared_->contrib[static_cast<std::size_t>(root)].data,
                sizeof(T));
    detail::team_rendezvous(*shared_);
    return out;
  }

  /// All-reduce over the team (combined in team-rank order).
  template <typename T, typename Op>
  [[nodiscard]] T allreduce(T value, Op op) const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= detail::coll_state::kSlotBytes);
    if (detail::coll_wire_active()) {
      std::vector<std::byte> mine(sizeof(T));
      std::memcpy(mine.data(), &value, sizeof(T));
      auto all = detail::coll_wire_exchange(
          shared_->wire_key, shared_->wire_seq++, shared_->members, mine);
      T acc;
      std::memcpy(&acc, all[0].data(), sizeof(T));
      for (std::size_t r = 1; r < all.size(); ++r) {
        T x;
        std::memcpy(&x, all[r].data(), sizeof(T));
        acc = op(acc, x);
      }
      return acc;
    }
    std::memcpy(shared_->contrib[static_cast<std::size_t>(my_rank_)].data,
                &value, sizeof(T));
    detail::team_rendezvous(*shared_);
    T acc;
    std::memcpy(&acc, shared_->contrib[0].data, sizeof(T));
    for (int r = 1; r < rank_n(); ++r) {
      T x;
      std::memcpy(&x, shared_->contrib[static_cast<std::size_t>(r)].data,
                  sizeof(T));
      acc = op(acc, x);
    }
    detail::team_rendezvous(*shared_);
    return acc;
  }

  template <typename T>
  [[nodiscard]] T allreduce_sum(T v) const {
    return allreduce(v, std::plus<T>{});
  }

 private:
  team(std::shared_ptr<detail::team_shared> shared, int my_rank)
      : shared_(std::move(shared)), my_rank_(my_rank) {}

  std::shared_ptr<detail::team_shared> shared_;
  int my_rank_ = -1;
};

/// Split the world by pseudo-node (all co-located ranks), the analogue of
/// upcxx::local_team(). On the smp conduit this is the whole world.
[[nodiscard]] team local_team();

}  // namespace aspen
