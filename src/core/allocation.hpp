// Shared-segment allocation: the aspen counterparts of upcxx::new_,
// upcxx::new_array, upcxx::delete_ and upcxx::allocate.
//
// Allocation always happens in the *calling* rank's segment (only the owner
// may allocate or free); the result is a global_ptr usable by every rank.
#pragma once

#include <new>
#include <type_traits>
#include <utility>

#include "core/global_ptr.hpp"

namespace aspen {

/// Allocate `n` objects' worth of uninitialized storage in the calling
/// rank's shared segment. Throws std::bad_alloc on segment exhaustion.
template <typename T>
[[nodiscard]] global_ptr<T> allocate(std::size_t n = 1,
                                     std::size_t align = alignof(T)) {
  detail::rank_context& c = detail::ctx();
  void* p = c.rt->arena().of(c.rank).allocator().allocate(n * sizeof(T),
                                                          align);
  if (p == nullptr) throw std::bad_alloc();
  return global_ptr<T>(c.rank, static_cast<T*>(p));
}

/// Free storage obtained from allocate()/new_/new_array. Must be called by
/// the owning rank. No destructors are run.
template <typename T>
void deallocate(global_ptr<T> g) {
  if (g.is_null()) return;
  detail::rank_context& c = detail::ctx();
  assert(g.where() == c.rank && "deallocate: only the owner may free");
  c.rt->arena().of(c.rank).allocator().deallocate(g.raw());
}

/// Allocate and construct one T in the calling rank's shared segment.
template <typename T, typename... Args>
[[nodiscard]] global_ptr<T> new_(Args&&... args) {
  global_ptr<T> g = allocate<T>(1);
  ::new (static_cast<void*>(g.raw())) T(std::forward<Args>(args)...);
  return g;
}

/// Allocate and value-initialize an array of `n` Ts.
template <typename T>
[[nodiscard]] global_ptr<T> new_array(std::size_t n) {
  global_ptr<T> g = allocate<T>(n);
  if constexpr (!std::is_trivially_default_constructible_v<T>) {
    for (std::size_t i = 0; i < n; ++i)
      ::new (static_cast<void*>(g.raw() + i)) T();
  } else {
    for (std::size_t i = 0; i < n; ++i)
      ::new (static_cast<void*>(g.raw() + i)) T{};
  }
  return g;
}

/// Destroy and free a single object created by new_.
template <typename T>
void delete_(global_ptr<T> g) {
  if (g.is_null()) return;
  g.raw()->~T();
  deallocate(g);
}

/// Destroy and free an array created by new_array. `n` must match the
/// allocation size for non-trivially-destructible T.
template <typename T>
void delete_array(global_ptr<T> g, std::size_t n = 0) {
  if (g.is_null()) return;
  if constexpr (!std::is_trivially_destructible_v<T>) {
    for (std::size_t i = 0; i < n; ++i) (g.raw() + i)->~T();
  }
  deallocate(g);
}

}  // namespace aspen
