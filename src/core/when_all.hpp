// when_all — conjoin futures (and plain values) into a single future whose
// readiness is the conjunction of its inputs and whose values are the
// concatenation of theirs.
//
// The general path materializes a dependency-graph node per call: one result
// cell plus one gather record plus one continuation per non-ready input —
// exactly the structure whose cost dominates the future-conjoining GUPS
// variants in the paper (Fig. 1).
//
// The optimized path (paper §III-C, enabled by version_config::when_all_opt)
// avoids all of that whenever the result is semantically equivalent to a
// single input:
//   - all inputs value-less and ready          -> return one of them;
//   - all inputs value-less, exactly one pending -> return the pending one;
//   - exactly one input carries values and every other input is ready
//                                              -> return the valued one.
#pragma once

#include <array>
#include <cstddef>
#include <tuple>

#include "core/future.hpp"

namespace aspen {

namespace detail {

template <typename X>
struct futurize {
  using type = future<std::decay_t<X>>;
};
template <typename... U>
struct futurize<future<U...>> {
  using type = future<U...>;
};
template <typename X>
using futurize_t = typename futurize<std::decay_t<X>>::type;

template <typename F>
struct future_arity;
template <typename... U>
struct future_arity<future<U...>>
    : std::integral_constant<std::size_t, sizeof...(U)> {};

[[nodiscard]] inline bool use_when_all_opt() noexcept {
  return have_ctx() ? ctx().ver.when_all_opt : true;
}

template <std::size_t N>
[[nodiscard]] constexpr std::size_t first_true(std::array<bool, N> flags) {
  for (std::size_t i = 0; i < N; ++i)
    if (flags[i]) return i;
  return N;
}

template <std::size_t N>
[[nodiscard]] constexpr std::size_t count_true(std::array<bool, N> flags) {
  std::size_t c = 0;
  for (bool b : flags) c += b ? 1 : 0;
  return c;
}

/// Heap record for the general conjoining path. Owns copies of all input
/// futures (keeping their values alive), a reference on the result cell,
/// and a countdown of pending inputs.
template <typename RCell, typename FutTuple>
struct gather_node {
  FutTuple inputs;
  RCell* rc;  // holds one reference
  std::size_t remaining;
  std::uint64_t issue_ns = 0;  // when_all() call time, for whenall_deferred

  gather_node(FutTuple in, RCell* r, std::size_t rem)
      : inputs(std::move(in)), rc(r), remaining(rem) {
    rc->add_ref();
  }

  void arrived() {
    if (--remaining == 0) finish();
  }

  void finish() {
    rc->set_value_tuple(std::apply(
        [](const auto&... f) { return std::tuple_cat(f.result_tuple()...); },
        inputs));
    rc->satisfy(1);
    rc->drop_ref();
    telemetry::note_latency(telemetry::lat_stream::whenall_deferred,
                            telemetry::lat_now_ns() - issue_ns);
    delete this;
  }
};

template <typename Node>
struct gather_cont final : continuation {
  Node* node;
  explicit gather_cont(Node* n) noexcept : node(n) {}
  void fire(cell_base* /*src*/) override { node->arrived(); }
  // If the input cell is destroyed without ever readying, the conjunction
  // is abandoned; the node (and result cell) are unreachable and leak, as
  // does an unfulfilled promise in UPC++. Tests never abandon inputs.
};

}  // namespace detail

/// Conjoin any number of futures and/or plain values (lifted via to_future)
/// into future<concatenated values...>.
template <typename... Args>
auto when_all(Args&&... args) {
  using RFut = detail::future_cat_t<detail::futurize_t<Args>...>;
  constexpr std::size_t n = sizeof...(Args);

  if constexpr (n == 0) {
    return make_future();
  } else {
    const std::uint64_t wa_issue = telemetry::lat_now_ns();
    auto inputs = std::make_tuple(to_future(std::forward<Args>(args))...);
    using FutTuple = decltype(inputs);
    constexpr std::array<bool, n> valued{
        (detail::future_arity<detail::futurize_t<Args>>::value > 0)...};
    constexpr std::size_t valued_count = detail::count_true(valued);

    if (detail::use_when_all_opt()) {
      if constexpr (valued_count == 0) {
        // All inputs are future<>; RFut is future<>.
        const future<>* pending = nullptr;
        std::size_t npend = 0;
        std::apply(
            [&](const auto&... f) {
              ((f.ready() ? void(0) : (pending = &f, ++npend, void(0))), ...);
            },
            inputs);
        if (npend == 0) {
          telemetry::count(telemetry::counter::whenall_all_ready);
          telemetry::note_latency(telemetry::lat_stream::whenall_eager,
                                  telemetry::lat_now_ns() - wa_issue);
          return RFut(std::get<0>(inputs));
        }
        if (npend == 1) {
          telemetry::count(telemetry::counter::whenall_one_pending);
          telemetry::note_latency(telemetry::lat_stream::whenall_eager,
                                  telemetry::lat_now_ns() - wa_issue);
          return RFut(*pending);
        }
      } else if constexpr (valued_count == 1) {
        // If every value-less input is already ready, the result is
        // semantically the single valued input.
        bool others_ready = true;
        std::size_t i = 0;
        std::apply(
            [&](const auto&... f) {
              ((others_ready = others_ready && (valued[i++] || f.ready())),
               ...);
            },
            inputs);
        if (others_ready) {
          telemetry::count(telemetry::counter::whenall_one_valued);
          telemetry::note_latency(telemetry::lat_stream::whenall_eager,
                                  telemetry::lat_now_ns() - wa_issue);
          constexpr std::size_t vi = detail::first_true(valued);
          return RFut(std::get<vi>(inputs));
        }
      }
    }

    // General path: build the dependency-graph node.
    telemetry::count(telemetry::counter::whenall_general);
    auto* rc = detail::make_pending_cell<RFut>();  // deps = 1 (the gather)
    std::size_t npend = 0;
    std::apply([&](const auto&... f) { ((npend += f.ready() ? 0 : 1), ...); },
               inputs);
    using Node = detail::gather_node<std::remove_pointer_t<decltype(rc)>, FutTuple>;
    auto* node = new Node(std::move(inputs), rc, npend);
    node->issue_ns = wa_issue;
    if (npend == 0) {
      node->finish();
    } else {
      std::apply(
          [&](const auto&... f) {
            ((f.ready()
                  ? void(0)
                  : f.raw_cell()->enqueue(new detail::gather_cont<Node>(node))),
             ...);
          },
          node->inputs);
    }
    return detail::wrap_cell_of<RFut>(rc, /*add_ref=*/false);
  }
}

}  // namespace aspen
