// Recycling allocator for internal promise cells — an ASPEN extension in
// the direction of the paper's stated future work ("additional
// optimizations inside the implementation that should transparently further
// reduce overheads associated with operations that can be satisfied
// on-node").
//
// Deferred notification and value-carrying eager completion both pay one
// heap allocation per operation for the internal cell. This pool replaces
// malloc/free with a per-thread size-class freelist: a cell freed by one
// operation is handed, still warm, to the next. Each block carries an
// 8-byte header recording its size class (or "from malloc"), so blocks are
// always returned to wherever they came from even if the enabling flag
// (version_config::cell_recycling, an ASPEN extension knob — default off to
// stay faithful to the paper's builds) is toggled mid-run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/telemetry.hpp"

namespace aspen::detail {

class recycling_pool {
 public:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 8;  // 64, 128, ..., 512 bytes
  static constexpr std::size_t kMaxBytes = kGranule * kClasses;
  /// Cap per class so an allocation burst cannot hold memory forever.
  static constexpr std::size_t kMaxPerClass = 4096;

  ~recycling_pool() {
    for (std::size_t c = 0; c < kClasses; ++c) {
      block* b = free_[c];
      while (b != nullptr) {
        block* next = b->next;
        std::free(b);
        b = next;
      }
      free_[c] = nullptr;
      count_[c] = 0;
    }
  }

  /// Allocate `bytes` of payload. `recycle` selects pooled vs plain malloc
  /// for *new* blocks; frees always honor the block's own origin header.
  [[nodiscard]] void* allocate(std::size_t bytes, bool recycle) {
    const std::size_t cls = class_of(bytes);
    if (recycle && cls < kClasses && free_[cls] != nullptr) {
      block* b = free_[cls];
      free_[cls] = b->next;
      --count_[cls];
      ++recycled_;
      telemetry::count(telemetry::counter::cellpool_recycled);
      return payload_of(b);
    }
    const std::size_t payload =
        cls < kClasses ? (cls + 1) * kGranule : bytes;
    auto* b = static_cast<block*>(std::malloc(sizeof(block) + payload));
    if (b == nullptr) throw std::bad_alloc();
    b->cls = recycle && cls < kClasses ? static_cast<std::int64_t>(cls) : -1;
    ++fresh_;
    telemetry::count(telemetry::counter::cellpool_fresh);
    return payload_of(b);
  }

  void deallocate(void* p) noexcept {
    if (p == nullptr) return;
    block* b = block_of(p);
    const std::int64_t cls = b->cls;
    if (cls >= 0 && count_[static_cast<std::size_t>(cls)] < kMaxPerClass) {
      b->next = free_[static_cast<std::size_t>(cls)];
      free_[static_cast<std::size_t>(cls)] = b;
      ++count_[static_cast<std::size_t>(cls)];
      return;
    }
    std::free(b);
  }

  /// Diagnostics for tests/benchmarks.
  [[nodiscard]] std::uint64_t recycled_count() const noexcept {
    return recycled_;
  }
  [[nodiscard]] std::uint64_t fresh_count() const noexcept { return fresh_; }
  [[nodiscard]] std::size_t cached_blocks() const noexcept {
    std::size_t n = 0;
    for (std::size_t c : count_) n += c;
    return n;
  }

 private:
  struct alignas(std::max_align_t) block {
    union {
      block* next;        // while on a freelist
      std::int64_t pad_;  // keeps the union trivially usable
    };
    std::int64_t cls;  // size class, or -1 = plain malloc block
  };

  static constexpr std::size_t class_of(std::size_t bytes) noexcept {
    return bytes == 0 ? 0 : (bytes - 1) / kGranule;
  }
  static void* payload_of(block* b) noexcept { return b + 1; }
  static block* block_of(void* p) noexcept {
    return static_cast<block*>(p) - 1;
  }

  std::array<block*, kClasses> free_{};
  std::array<std::size_t, kClasses> count_{};
  std::uint64_t recycled_ = 0;
  std::uint64_t fresh_ = 0;
};

/// The calling thread's cell pool.
[[nodiscard]] inline recycling_pool& tls_cell_pool() noexcept {
  static thread_local recycling_pool pool;
  return pool;
}

}  // namespace aspen::detail
