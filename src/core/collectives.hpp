// Shared-memory collectives: barrier, broadcast, reductions.
//
// These are substrate conveniences used by applications for setup and
// teardown (the paper's apps use MPI collectives for initialization); all
// timed communication goes through RMA/atomics. Every collective keeps the
// progress engine turning while waiting, so outstanding AMs continue to
// drain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "core/future.hpp"
#include "core/runtime.hpp"

namespace aspen {

/// Block until every rank has entered the barrier. Services progress while
/// waiting.
void barrier();

/// Asynchronous barrier: registers this rank's arrival at the next barrier
/// epoch and returns a future readied once every rank has arrived at that
/// epoch. Epochs complete in order; at most coll_state::kAsyncEpochRing
/// epochs may be outstanding (further calls block until earlier epochs
/// drain).
///
/// Eager-notification semantics extend naturally here (an ASPEN extension
/// in the spirit of the paper): if the caller is the *last* arriver the
/// barrier is already complete, and the returned future is the pooled
/// ready future<> — zero allocations, no progress-queue round trip.
/// Otherwise completion is delivered through the progress engine.
[[nodiscard]] future<> barrier_async();

namespace detail {

/// Phase-counting rendezvous used by all collectives: returns after all
/// ranks arrive, servicing progress while spinning.
void coll_rendezvous();

// ---- socket-conduit dispatch (conduit::tcp; implemented over
// net::endpoint in collectives.cpp) --------------------------------------

/// True when the calling rank's run uses conduit::tcp, in which case every
/// collective must go over the wire (ranks are separate processes and the
/// shared coll_state slots only exist per process).
[[nodiscard]] bool coll_wire_active() noexcept;

/// All-to-all byte-blob exchange among `members` (world ranks, identical
/// list in every member; members.front() coordinates). (key, seq) must
/// identify this collective identically in every member. Blocks, servicing
/// full progress. Returns member-ordered contributions.
[[nodiscard]] std::vector<std::vector<std::byte>> coll_wire_exchange(
    std::uint64_t key, std::uint64_t seq, const std::vector<int>& members,
    const std::vector<std::byte>& mine);

/// World-team convenience: members = 0..rank_n-1.
[[nodiscard]] std::vector<std::vector<std::byte>> coll_wire_exchange(
    std::uint64_t key, std::uint64_t seq, const std::vector<std::byte>& mine);

/// Collective key of the world coll_state's wire stream.
inline constexpr std::uint64_t kWorldCollWireKey = 0xA5C0000000000001ull;

}  // namespace detail

/// Broadcast a trivially copyable value (<= coll_state::kSlotBytes) from
/// `root` to all ranks.
template <typename T>
[[nodiscard]] T broadcast(T value, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) <= detail::coll_state::kSlotBytes,
                "broadcast value too large for a slot; use broadcast_vector");
  detail::rank_context& c = detail::ctx();
  detail::coll_state& cs = c.w->coll();
  if (detail::coll_wire_active()) {
    std::vector<std::byte> mine(sizeof(T));
    if (c.rank == root) std::memcpy(mine.data(), &value, sizeof(T));
    auto all = detail::coll_wire_exchange(detail::kWorldCollWireKey,
                                          cs.wire_seq++, mine);
    T out;
    std::memcpy(&out, all[static_cast<std::size_t>(root)].data(), sizeof(T));
    return out;
  }
  if (c.rank == root)
    std::memcpy(cs.contrib[static_cast<std::size_t>(root)].data, &value,
                sizeof(T));
  detail::coll_rendezvous();
  T out;
  std::memcpy(&out, cs.contrib[static_cast<std::size_t>(root)].data,
              sizeof(T));
  detail::coll_rendezvous();  // root may not reuse the slot until all read
  return out;
}

/// Broadcast a vector of trivially copyable elements from `root`.
template <typename T>
[[nodiscard]] std::vector<T> broadcast_vector(const std::vector<T>& v,
                                              int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  detail::rank_context& c = detail::ctx();
  detail::coll_state& cs = c.w->coll();
  if (detail::coll_wire_active()) {
    std::vector<std::byte> mine;
    if (c.rank == root) {
      mine.resize(v.size() * sizeof(T));
      std::memcpy(mine.data(), v.data(), mine.size());
    }
    auto all = detail::coll_wire_exchange(detail::kWorldCollWireKey,
                                          cs.wire_seq++, mine);
    const auto& blob = all[static_cast<std::size_t>(root)];
    std::vector<T> out(blob.size() / sizeof(T));
    std::memcpy(out.data(), blob.data(), blob.size());
    return out;
  }
  if (c.rank == root) {
    cs.bulk_buf.resize(v.size() * sizeof(T));
    std::memcpy(cs.bulk_buf.data(), v.data(), cs.bulk_buf.size());
  }
  detail::coll_rendezvous();
  std::vector<T> out(cs.bulk_buf.size() / sizeof(T));
  std::memcpy(out.data(), cs.bulk_buf.data(), cs.bulk_buf.size());
  detail::coll_rendezvous();
  return out;
}

/// All-reduce a trivially copyable value with a binary combiner (applied in
/// rank order, so non-commutative combiners are deterministic).
template <typename T, typename Op>
[[nodiscard]] T allreduce(T value, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(sizeof(T) <= detail::coll_state::kSlotBytes);
  detail::rank_context& c = detail::ctx();
  detail::coll_state& cs = c.w->coll();
  if (detail::coll_wire_active()) {
    std::vector<std::byte> mine(sizeof(T));
    std::memcpy(mine.data(), &value, sizeof(T));
    auto all = detail::coll_wire_exchange(detail::kWorldCollWireKey,
                                          cs.wire_seq++, mine);
    T acc;
    std::memcpy(&acc, all[0].data(), sizeof(T));
    for (std::size_t r = 1; r < all.size(); ++r) {
      T x;
      std::memcpy(&x, all[r].data(), sizeof(T));
      acc = op(acc, x);
    }
    return acc;
  }
  std::memcpy(cs.contrib[static_cast<std::size_t>(c.rank)].data, &value,
              sizeof(T));
  detail::coll_rendezvous();
  T acc;
  std::memcpy(&acc, cs.contrib[0].data, sizeof(T));
  const int n = c.rt->nranks();
  for (int r = 1; r < n; ++r) {
    T x;
    std::memcpy(&x, cs.contrib[static_cast<std::size_t>(r)].data, sizeof(T));
    acc = op(acc, x);
  }
  detail::coll_rendezvous();
  return acc;
}

template <typename T>
[[nodiscard]] T allreduce_sum(T v) {
  return allreduce(v, std::plus<T>{});
}
template <typename T>
[[nodiscard]] T allreduce_min(T v) {
  return allreduce(v, [](T a, T b) { return b < a ? b : a; });
}
template <typename T>
[[nodiscard]] T allreduce_max(T v) {
  return allreduce(v, [](T a, T b) { return a < b ? b : a; });
}

}  // namespace aspen
