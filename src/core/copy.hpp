// copy — one-sided transfer between two global pointers (either or both of
// which may be remote). The four locality cases take different paths:
//
//   local -> local    : synchronous memcpy (eager completion applies);
//   local -> remote   : put path;
//   remote -> local   : get path;
//   remote -> remote  : initiator-mediated two-hop (get into a staging
//                       buffer, then put), with operation completion
//                       delivered after the final ack.
//
// Completion support: operation event (future/promise/LPC). Source and
// remote events are not meaningful for copy and are rejected statically.
#pragma once

#include "core/rma.hpp"

namespace aspen {

namespace detail {

template <typename Item>
struct copy_item_ok : std::false_type {};
template <>
struct copy_item_ok<future_cx<event_operation_t>> : std::true_type {};
template <typename... T>
struct copy_item_ok<promise_cx<event_operation_t, T...>> : std::true_type {};
template <typename Fn>
struct copy_item_ok<lpc_cx<event_operation_t, Fn>> : std::true_type {};

template <typename Cxs>
struct copy_cxs_ok;
template <typename... Items>
struct copy_cxs_ok<completions<Items...>>
    : std::bool_constant<(copy_item_ok<Items>::value && ...)> {};

}  // namespace detail

/// Copy `n` objects from `src` to `dest`, wherever each resides.
template <rma_type T,
          typename Cxs = detail::completions<
              detail::future_cx<detail::event_operation_t>>>
auto copy(global_ptr<T> src, global_ptr<T> dest, std::size_t n,
          Cxs cxs = operation_cx::as_future()) -> detail::cx_return_t<Cxs> {
  static_assert(detail::copy_cxs_ok<std::decay_t<Cxs>>::value,
                "copy supports only operation-event completions");
  detail::rank_context& c = detail::ctx();
  const bool src_local = detail::rma_target_local(c, src.where());
  const bool dest_local = detail::rma_target_local(c, dest.where());
  detail::no_remote_cx rs;

  if (src_local && dest_local) {
    detail::legacy_extra_alloc_if_configured(c);
    std::atomic_thread_fence(std::memory_order_acquire);
    std::memmove(dest.raw(), src.raw(), n * sizeof(T));
    std::atomic_thread_fence(std::memory_order_release);
    return detail::collapse_futs(
        detail::process_sync_tuple<>(std::move(cxs), rs));
  }
  if (src_local) {
    return detail::rma_put_bytes(dest.where(), dest.raw(), src.raw(),
                                 n * sizeof(T), std::move(cxs));
  }
  if (dest_local) {
    return rget(src, dest.raw(), n, std::move(cxs));
  }

  // Both remote: stage through the initiator. The user's completions are
  // wired into a record fulfilled after the final put acknowledges.
  detail::op_record<>* rec = nullptr;
  auto futs = detail::process_async_tuple<>(std::move(cxs), rs, rec);
  auto* staging = new std::vector<T>(n);
  T* buf = staging->data();
  rget(src, buf, n,
       operation_cx::as_eager_lpc([staging, buf, dest, n, rec] {
         rput(buf, dest, n,
              operation_cx::as_eager_lpc([staging, rec] {
                delete staging;
                rec->fulfill();
              }));
       }));
  return detail::collapse_futs(std::move(futs));
}

/// Scalar convenience overload.
template <rma_type T,
          typename Cxs = detail::completions<
              detail::future_cx<detail::event_operation_t>>>
auto copy(global_ptr<T> src, global_ptr<T> dest,
          Cxs cxs = operation_cx::as_future()) -> detail::cx_return_t<Cxs> {
  return copy(src, dest, 1, std::move(cxs));
}

}  // namespace aspen
