// aspen::telemetry — runtime counters, progress-queue depth tracking, and
// Chrome Trace Event export for the completion subsystem.
//
// The paper's claim rests on *where* a completion notification fires —
// eagerly at the initiation site versus deferred through the progress
// engine — so this subsystem gives every notification path a first-class
// counter: eager completions taken vs. deferred, future-cell pool
// hits/misses, ready-future pool reuses, when_all collapse hits by case,
// local-bypass vs. remote-AM puts/gets, RPC round trips, and atomic-domain
// fetching vs. non-fetching traffic. A second group tracks the progress
// engine itself: per-fire() batch-size histogram (power-of-two buckets),
// queue high-water mark, and reserve-growth events.
//
// Architecture:
//   - counters live in a per-thread `record` of cache-line-padded relaxed
//     atomics (one rank == one thread in this runtime, so writes are
//     uncontended; padding keeps cross-thread snapshot reads from
//     false-sharing the writer);
//   - records register themselves in a process-global registry on first
//     use and merge into a retired aggregate at thread exit, so
//     telemetry::aggregate() works both during and after an spmd() run;
//   - telemetry::snapshot is a plain value type with operator- for
//     interval deltas, and to_json() for the benchmark sidecar files;
//   - telemetry::span is a scoped RAII Trace Event emitter; events collect
//     in per-thread buffers and telemetry::write_trace() emits
//     chrome://tracing / Perfetto-loadable JSON.
//
// The whole subsystem sits behind the ASPEN_TELEMETRY CMake option. When
// the option is OFF every count()/note_*() call and span constructor
// compiles to nothing, `record` is an empty type (verified by a
// static_assert below), and snapshots read as all-zero.
//
// This header is deliberately dependency-free (no core/runtime includes)
// so every layer — gex substrate, progress engine, completion engine,
// apps — can include it without cycles.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>

#if defined(ASPEN_TELEMETRY) && ASPEN_TELEMETRY
#define ASPEN_TELEMETRY_ENABLED 1
#else
#define ASPEN_TELEMETRY_ENABLED 0
#endif

#include "core/telemetry_lat.hpp"

namespace aspen::telemetry {

// ---------------------------------------------------------------------------
// Counter taxonomy
// ---------------------------------------------------------------------------

/// Every runtime counter. Completion items of kind future/promise/lpc are
/// counted exactly once among {cx_eager_taken, cx_deferred_queued,
/// cx_remote_async}; rpc_cx items surface as rpc_ff_sent instead (they are
/// dispatched to the target, never notified locally).
enum class counter : std::size_t {
  // Completion-path disposition (the paper's core distinction).
  cx_eager_taken,      ///< notification delivered eagerly at the initiation site
  cx_deferred_queued,  ///< notification enqueued on the progress queue
  cx_remote_async,     ///< notification wired to an in-flight remote op record

  // Future machinery.
  ready_pool_hit,    ///< ready future<> served from the pooled immortal cell
  ready_cell_alloc,  ///< ready future<> that had to allocate a cell (no pool)
  cellpool_recycled, ///< internal cell allocation served from the freelist
  cellpool_fresh,    ///< internal cell allocation that went to malloc

  // when_all collapse (paper §III-C) by case.
  whenall_all_ready,    ///< all inputs value-less and ready -> reuse input
  whenall_one_pending,  ///< all value-less, one pending -> return it
  whenall_one_valued,   ///< single valued input, rest ready -> return it
  whenall_general,      ///< general dependency-graph node built

  // RMA path selection.
  rma_put_local,   ///< put took the shared-memory bypass
  rma_put_remote,  ///< put took the active-message round trip
  rma_get_local,   ///< get took the shared-memory bypass
  rma_get_remote,  ///< get took the active-message round trip

  // RPC.
  rpc_roundtrip,  ///< rpc() request/reply pairs initiated
  rpc_ff_sent,    ///< rpc_ff / remote_cx::as_rpc dispatches

  // Atomic domain.
  amo_fetching,     ///< value-producing atomic (fetch_add, exchange, ...)
  amo_sideeffect,   ///< side-effect-only atomic (add, store, ...)
  amo_nonfetching,  ///< non-fetching *_into variant (paper §III-B)

  // Substrate.
  am_sent,      ///< active messages initiated by this rank
  am_executed,  ///< active messages executed by this rank's poll()

  // Progress engine.
  progress_calls,  ///< entries into aspen::progress()

  // Persona / cross-thread LPC subsystem (core/persona.hpp).
  lpc_enqueued,      ///< LPCs enqueued onto a persona mailbox
  lpc_executed,      ///< LPCs executed by a persona drain
  lpc_cross_thread,  ///< executed LPCs enqueued by a non-holding thread
  persona_switches,  ///< persona activations (scope pushes / acquisitions)

  // Perturbation conduit (gex/perturb.hpp) injected events.
  perturb_delayed,       ///< messages assigned a nonzero delivery hold
  perturb_reordered,     ///< deliveries emitted out of arrival order
  perturb_forced_async,  ///< RMA/atomics diverted to the AM path
  perturb_backpressure,  ///< sends that waited on a full inbox

  // Socket conduit (src/net/), conduit::tcp.
  net_msgs_sent,       ///< AMs shipped to a remote process
  net_msgs_received,   ///< AMs delivered from a remote process
  net_eager_sent,      ///< AMs sent in one eager frame (<= eager_max)
  net_rdzv_sent,       ///< AMs negotiated through rendezvous (RTS/CTS)
  net_bytes_sent,      ///< wire bytes written to sockets
  net_bytes_received,  ///< wire bytes read from sockets
  net_partial_writes,  ///< sends cut short by a full socket buffer
  net_short_reads,     ///< reads returning less than the requested length
  net_telemetry_sent,      ///< live-telemetry update frames shipped to rank 0
  net_telemetry_received,  ///< live-telemetry update frames rank 0 absorbed

  // Shared-memory conduit (src/shm/), conduit::shm. The shm_* counters are
  // the subset of net_* traffic that took the ring path instead of a
  // socket (net_msgs_sent still counts every cross-process AM).
  shm_msgs_sent,       ///< AMs pushed through a shared-memory ring
  shm_msgs_received,   ///< AMs popped from a shared-memory ring
  shm_bytes_sent,      ///< payload bytes pushed through the rings
  shm_bytes_received,  ///< payload bytes popped from the rings
  shm_bulk_staged,     ///< large payloads staged via the bulk ring
  shm_ring_full,       ///< pushes that fell back to the socket (ring full)
  shm_peers_mapped,    ///< peers whose segments were mapped at bootstrap

  // Small-message aggregation (aspen::agg, docs/AGG.md): per-peer wire
  // coalescing in net::endpoint plus the RPC aggregation store.
  agg_frames_coalesced,  ///< eager frames that shared a flush with others
  agg_flush_bytes,       ///< batch flushes triggered by the byte watermark
  agg_flush_frames,      ///< batch flushes triggered by the frame count
  agg_flush_age,         ///< batch flushes triggered by the age watermark
  agg_flush_forced,      ///< flushes forced by control traffic / idle / drain
  agg_bytes_saved,       ///< per-message overhead bytes avoided by the store
  agg_store_buckets_shipped,  ///< agg_store buckets shipped as one bulk AM
  agg_store_elems,            ///< elements pushed through agg_store buckets
  net_sendq_parked,      ///< sends parked on the ASPEN_NET_SENDQ_MAX bound

  // io_uring data plane (aspen::uring, docs/URING.md): batched-submission
  // socket I/O behind the endpoint's io_backend seam.
  uring_sqe_submitted,       ///< SQEs handed to the kernel (send + recv arm)
  uring_sqe_batched,         ///< SQEs that shared an io_uring_enter with others
  uring_cqe_reaped,          ///< CQEs consumed from the completion ring
  uring_multishot_requeues,  ///< multishot recv re-arms (F_MORE cleared)
  uring_syscalls_saved,      ///< syscalls avoided vs the poll backend
  net_idle_unwatched,        ///< peers left unwatched by one capped idle poll

  // Operation tracing (aspen::otrace, docs/OTRACE.md).
  otrace_sampled,  ///< injected ops that drew a sampled trace id

  kCount,
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(counter::kCount);

/// Stable snake_case name of a counter (used as the JSON key).
[[nodiscard]] const char* to_string(counter c) noexcept;

/// Power-of-two buckets for the progress-queue fire() batch-size histogram:
/// bucket i counts fires of batch size in [2^i, 2^(i+1)).
inline constexpr std::size_t kPqBatchBuckets = 16;

[[nodiscard]] constexpr std::size_t pq_batch_bucket(std::size_t n) noexcept {
  const std::size_t b =
      n == 0 ? 0 : static_cast<std::size_t>(std::bit_width(n) - 1);
  return b < kPqBatchBuckets ? b : kPqBatchBuckets - 1;
}

// ---------------------------------------------------------------------------
// Snapshot — plain values, always available (all-zero when compiled out)
// ---------------------------------------------------------------------------

struct snapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kPqBatchBuckets> pq_fire_hist{};
  std::uint64_t pq_high_water = 0;  ///< max pending depth seen (monotone)
  std::uint64_t pq_reserve_growths = 0;
  std::uint64_t pq_total_fired = 0;
  /// Max persona-mailbox depth observed at any enqueue (monotone max,
  /// like pq_high_water).
  std::uint64_t lpc_mailbox_high_water = 0;
  /// Latency histograms (telemetry_lat.hpp), one per stream. Buckets are
  /// monotone sums; each max_ns is a high-water mark.
  std::array<lat_hist, kLatStreamCount> lat{};

  bool operator==(const snapshot&) const = default;

  [[nodiscard]] std::uint64_t get(counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] const lat_hist& lat_of(lat_stream s) const noexcept {
    return lat[static_cast<std::size_t>(s)];
  }

  /// Disposition-wide issue->completion histogram: the op-class grid's
  /// eager (or deferred) streams folded together.
  [[nodiscard]] lat_hist lat_by_disposition(disposition d) const noexcept {
    lat_hist h{};
    for (std::size_t c = 0; c < kOpClassCount; ++c)
      lat_merge(h, lat_of(stream_of(static_cast<op_class>(c), d)));
    return h;
  }

  /// Completion items issued = eager + deferred + remote-async. The
  /// invariant the benchmark sidecars assert: every item lands in exactly
  /// one disposition bucket.
  [[nodiscard]] std::uint64_t completions_issued() const noexcept {
    return get(counter::cx_eager_taken) + get(counter::cx_deferred_queued) +
           get(counter::cx_remote_async);
  }

  /// Fraction of completion items that bypassed the progress queue.
  [[nodiscard]] double eager_bypass_ratio() const noexcept {
    const std::uint64_t total = completions_issued();
    return total == 0
               ? 0.0
               : static_cast<double>(get(counter::cx_eager_taken)) /
                     static_cast<double>(total);
  }

  /// Interval delta. Monotone sums subtract; pq_high_water (and every
  /// latency max_ns) is a running maximum for which a difference is
  /// meaningless, so the minuend's value is kept as-is.
  [[nodiscard]] snapshot operator-(const snapshot& rhs) const noexcept {
    snapshot d = *this;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      d.counters[i] -= rhs.counters[i];
    for (std::size_t i = 0; i < kPqBatchBuckets; ++i)
      d.pq_fire_hist[i] -= rhs.pq_fire_hist[i];
    d.pq_reserve_growths -= rhs.pq_reserve_growths;
    d.pq_total_fired -= rhs.pq_total_fired;
    for (std::size_t i = 0; i < kLatStreamCount; ++i)
      lat_subtract(d.lat[i], rhs.lat[i]);
    return d;
  }

  /// Serialize as a JSON object (counters + progress-queue stats + derived
  /// consistency fields). Implemented in telemetry.cpp.
  [[nodiscard]] std::string to_json() const;
};

/// Merge `part` into `into` with cross-rank semantics: counters, the fire
/// histogram and the monotone progress-queue sums add; high-water marks
/// take the max (a depth in one process says nothing about another's).
/// This single definition backs both the post-hoc sidecar merge
/// (bench::merge_snapshots) and the live wire aggregation
/// (telemetry::live), so the two paths agree bit-for-bit by construction.
void merge_into(snapshot& into, const snapshot& part) noexcept;

// ---------------------------------------------------------------------------
// The per-thread record
// ---------------------------------------------------------------------------

namespace detail {

#if ASPEN_TELEMETRY_ENABLED

/// One cache line per counter: the writer (the owning rank thread) never
/// false-shares with concurrent aggregate() readers.
struct alignas(64) padded_u64 {
  std::atomic<std::uint64_t> v{0};
};

/// Per-stream latency storage. Unpadded (13 streams x 65 words would be
/// 54 KiB/thread padded): buckets on one stream are written by the owning
/// thread only, and a reader tearing across bucket lines still sees each
/// monotone word exactly.
struct lat_cell {
  std::array<std::atomic<std::uint64_t>, kLatBuckets> buckets{};
  std::atomic<std::uint64_t> max_ns{0};
};

struct record {
  std::array<padded_u64, kCounterCount> sums{};
  std::array<padded_u64, kPqBatchBuckets> pq_hist{};
  padded_u64 pq_high_water{};
  padded_u64 pq_reserve_growths{};
  padded_u64 pq_total_fired{};
  padded_u64 lpc_mailbox_high_water{};
  std::array<lat_cell, kLatStreamCount> lat{};

  record();   // registers with the process-global registry
  ~record();  // merges into the retired aggregate and deregisters

  void add(counter c, std::uint64_t n) noexcept {
    sums[static_cast<std::size_t>(c)].v.fetch_add(n,
                                                  std::memory_order_relaxed);
  }
  /// Single-writer monotone max (only the owning thread stores).
  void raise_high_water(std::uint64_t depth) noexcept {
    if (depth > pq_high_water.v.load(std::memory_order_relaxed))
      pq_high_water.v.store(depth, std::memory_order_relaxed);
  }
  /// Mailbox depths are observed by producers on many threads, so unlike
  /// the progress-queue max this one needs a CAS-free racy max: a stale
  /// overwrite can only lose to a concurrent *larger* depth, which the
  /// next enqueue at that depth restores.
  void raise_lpc_mailbox_high_water(std::uint64_t depth) noexcept {
    std::uint64_t cur = lpc_mailbox_high_water.v.load(std::memory_order_relaxed);
    while (depth > cur &&
           !lpc_mailbox_high_water.v.compare_exchange_weak(
               cur, depth, std::memory_order_relaxed)) {
    }
  }
  /// One latency sample. Single-writer (the owning thread), so the max is
  /// a plain load/store like raise_high_water.
  void note_lat(lat_stream s, std::uint64_t ns) noexcept {
    lat_cell& c = lat[static_cast<std::size_t>(s)];
    c.buckets[lat_bucket(ns)].fetch_add(1, std::memory_order_relaxed);
    if (ns > c.max_ns.load(std::memory_order_relaxed))
      c.max_ns.store(ns, std::memory_order_relaxed);
  }
};

[[nodiscard]] inline record& tls_record() noexcept {
  static thread_local record r;
  return r;
}

#else  // !ASPEN_TELEMETRY_ENABLED

/// Compiled-out configuration: the record carries no state at all. The
/// static_assert below is the "size check" proving instrumentation really
/// vanished from every translation unit.
struct record {};

#endif

static_assert(ASPEN_TELEMETRY_ENABLED || std::is_empty_v<record>,
              "with ASPEN_TELEMETRY off the counter record must be stateless");

}  // namespace detail

// ---------------------------------------------------------------------------
// Counting API (no-ops when compiled out)
// ---------------------------------------------------------------------------

inline void count(counter c, std::uint64_t n = 1) noexcept {
#if ASPEN_TELEMETRY_ENABLED
  detail::tls_record().add(c, n);
#else
  (void)c;
  (void)n;
#endif
}

/// Record a progress-queue fire() of `batch` notifications.
inline void note_pq_fire(std::size_t batch) noexcept {
#if ASPEN_TELEMETRY_ENABLED
  detail::record& r = detail::tls_record();
  r.pq_hist[pq_batch_bucket(batch)].v.fetch_add(1, std::memory_order_relaxed);
  r.pq_total_fired.v.fetch_add(batch, std::memory_order_relaxed);
#else
  (void)batch;
#endif
}

/// Record the pending depth after a push (tracks the high-water mark).
inline void note_pq_depth(std::size_t depth) noexcept {
#if ASPEN_TELEMETRY_ENABLED
  detail::tls_record().raise_high_water(depth);
#else
  (void)depth;
#endif
}

/// Record the depth of a persona LPC mailbox after an enqueue (tracks the
/// high-water mark; callable from any producer thread).
inline void note_lpc_mailbox_depth(std::size_t depth) noexcept {
#if ASPEN_TELEMETRY_ENABLED
  detail::tls_record().raise_lpc_mailbox_high_water(depth);
#else
  (void)depth;
#endif
}

/// Record one capacity growth of a progress-queue vector.
inline void note_pq_reserve_growth() noexcept {
#if ASPEN_TELEMETRY_ENABLED
  detail::tls_record().pq_reserve_growths.v.fetch_add(
      1, std::memory_order_relaxed);
#endif
}

/// Record one latency sample (nanoseconds) on `s`.
inline void note_latency(lat_stream s, std::uint64_t ns) noexcept {
#if ASPEN_TELEMETRY_ENABLED
  detail::tls_record().note_lat(s, ns);
#else
  (void)s;
  (void)ns;
#endif
}

/// Snapshot of the calling thread's record only.
[[nodiscard]] snapshot local_snapshot() noexcept;

/// Process-wide snapshot: retired (exited) threads' totals plus every live
/// thread's current values. Sums add across threads; pq_high_water is the
/// max. Safe to call after spmd() returns.
[[nodiscard]] snapshot aggregate() noexcept;

// ---------------------------------------------------------------------------
// Trace Event export (chrome://tracing / Perfetto)
// ---------------------------------------------------------------------------

/// Runtime switch for span collection. Off by default; flipping it on/off
/// brackets the region of interest so hot loops pay only a relaxed load
/// when idle.
void enable_tracing(bool on) noexcept;
[[nodiscard]] bool tracing_enabled() noexcept;

/// Tag the calling thread with its rank; emitted as the Trace Event `tid`
/// so Perfetto groups spans per rank. Called by the spmd launcher.
void set_thread_rank(int rank) noexcept;

/// Record this process's steady-clock offset relative to the job's rank 0
/// (local_now_ns - rank0_now_ns, estimated by the conduit::tcp bootstrap's
/// RTT-midpoint probes). Once set, write_trace emits *absolute*,
/// offset-corrected timestamps instead of process-relative ones, so the
/// per-rank trace files of one job merge onto a single shared timeline.
void set_clock_sync(std::int64_t offset_ns) noexcept;
[[nodiscard]] bool clock_synced() noexcept;
[[nodiscard]] std::int64_t clock_offset_ns() noexcept;

/// Discard all collected events (retired and live buffers).
void clear_trace() noexcept;

/// Number of events currently held (retired + live).
[[nodiscard]] std::size_t trace_event_count() noexcept;

/// Emit the collected events as a Trace Event JSON document
/// ({"traceEvents": [...]}, "X" complete events, microsecond timestamps).
void write_trace(std::ostream& os);

/// write_trace to a file; returns false if the file cannot be opened.
bool write_trace_file(const std::string& path);

namespace detail {

struct trace_event {
  const char* name;  // string literal owned by the caller
  const char* cat;
  std::uint32_t tid;
  std::uint64_t ts_ns;   // steady-clock, process-relative
  std::uint64_t dur_ns;
  char ph;            // 'X' complete span, 's'/'f' flow start/finish
  std::uint64_t id;   // flow binding id (0 for spans)
};

#if ASPEN_TELEMETRY_ENABLED
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;
void trace_emit(const char* name, const char* cat, std::uint64_t ts_ns,
                std::uint64_t dur_ns) noexcept;
void trace_emit_flow(const char* name, const char* cat, bool begin,
                     std::uint64_t id) noexcept;

/// The op currently being issued on this thread (op_scope below). The
/// completion engine (cx_state.hpp) reads it at every disposition site to
/// attribute the notification's issue->completion latency to the right
/// lat_stream without threading a class/timestamp parameter through every
/// handle_sync/handle_async overload.
struct op_ctx {
  std::uint64_t issue_ns = 0;
  op_class cls = op_class::rma_put;
  bool active = false;
};

[[nodiscard]] inline op_ctx& tls_op() noexcept {
  static thread_local op_ctx o;
  return o;
}
#endif

}  // namespace detail

/// The trace clock (process-relative steady ns), or 0 when telemetry is
/// compiled out. Payload stamps (e.g. the rpc request's issue timestamp)
/// use this so wire layouts stay identical across build configurations.
[[nodiscard]] inline std::uint64_t lat_now_ns() noexcept {
#if ASPEN_TELEMETRY_ENABLED
  return detail::trace_now_ns();
#else
  return 0;
#endif
}

#if ASPEN_TELEMETRY_ENABLED

/// RAII op-issue marker: communication entry points (rput/rget/atomics)
/// construct one, and every completion notification the op spawns records
/// now - issue_ns on the stream for (cls, disposition). Nests (saves and
/// restores the previous context) so an op issued from inside another op's
/// inline completion attributes correctly.
class op_scope {
 public:
  explicit op_scope(op_class cls) noexcept : saved_(detail::tls_op()) {
    detail::tls_op() = {detail::trace_now_ns(), cls, true};
  }
  ~op_scope() { detail::tls_op() = saved_; }
  op_scope(const op_scope&) = delete;
  op_scope& operator=(const op_scope&) = delete;

 private:
  detail::op_ctx saved_;
};

/// Snapshot of the issuing op's context, captured into deferred-completion
/// closures and op_records at injection time and consumed when the
/// notification finally fires (possibly on another thread — the record
/// written is the firing thread's, which aggregate() sums anyway).
struct op_capture {
  std::uint64_t issue_ns = 0;
  op_class cls = op_class::rma_put;
  bool active = false;

  op_capture() noexcept {
    const detail::op_ctx& o = detail::tls_op();
    issue_ns = o.issue_ns;
    cls = o.cls;
    active = o.active;
  }

  void complete_deferred() const noexcept {
    if (active)
      note_latency(stream_of(cls, disposition::deferred),
                   detail::trace_now_ns() - issue_ns);
  }

  /// Register the captured op with the stall watchdog (0 when untracked:
  /// watchdog disabled, or no op_scope was active at capture).
  [[nodiscard]] std::uint64_t track() const noexcept {
    return active ? watchdog::track_op(cls) : 0;
  }
};

/// Record an eager (inline) completion of the op being issued, if any.
inline void note_op_eager() noexcept {
  const detail::op_ctx& o = detail::tls_op();
  if (o.active)
    note_latency(stream_of(o.cls, disposition::eager),
                 detail::trace_now_ns() - o.issue_ns);
}

/// Record a deferred completion of the op being issued, if any (the
/// enqueue-time variant; closures that fire later use op_capture).
inline void note_op_deferred_now() noexcept {
  const detail::op_ctx& o = detail::tls_op();
  if (o.active)
    note_latency(stream_of(o.cls, disposition::deferred),
                 detail::trace_now_ns() - o.issue_ns);
}

/// Progress-engine heartbeat: records the inter-arrival gap since this
/// thread's previous progress() entry (the starvation signal) and feeds
/// the stall watchdog.
inline void note_progress_tick() noexcept {
  const std::uint64_t now = detail::trace_now_ns();
  static thread_local std::uint64_t last = 0;
  if (last != 0 && now > last)
    note_latency(lat_stream::progress_gap, now - last);
  last = now;
  watchdog::note_progress(now);
}

#else  // !ASPEN_TELEMETRY_ENABLED

class op_scope {
 public:
  explicit op_scope(op_class) noexcept {}
  op_scope(const op_scope&) = delete;
  op_scope& operator=(const op_scope&) = delete;
};

static_assert(sizeof(op_scope) == 1,
              "with ASPEN_TELEMETRY off op scopes must carry no state");

struct op_capture {
  op_capture() noexcept = default;
  void complete_deferred() const noexcept {}
  [[nodiscard]] std::uint64_t track() const noexcept { return 0; }
};

inline void note_op_eager() noexcept {}
inline void note_op_deferred_now() noexcept {}
inline void note_progress_tick() noexcept {}

#endif

/// Emit a Perfetto flow event at the current time: `ph:"s"` (begin=true)
/// starts a flow arrow, `ph:"f"` (begin=false) terminates it. The two ends
/// bind on (name, cat, id) across ranks in a merged trace — the conduit
/// uses this to draw each wire message from its send_am site to its staged
/// delivery on the receiver. No-op unless tracing is enabled (and compiled
/// in); name/cat must be string literals.
inline void trace_flow(const char* name, const char* cat, bool begin,
                       std::uint64_t id) noexcept {
#if ASPEN_TELEMETRY_ENABLED
  if (tracing_enabled()) detail::trace_emit_flow(name, cat, begin, id);
#else
  (void)name;
  (void)cat;
  (void)begin;
  (void)id;
#endif
}

#if ASPEN_TELEMETRY_ENABLED

/// Scoped Trace Event span: records a complete ("ph":"X") event covering
/// the constructor-to-destructor interval, iff tracing was enabled at
/// construction. `name`/`cat` must be string literals (or otherwise outlive
/// the trace buffers).
class span {
 public:
  explicit span(const char* name, const char* cat = "aspen") noexcept {
    if (tracing_enabled()) {
      name_ = name;
      cat_ = cat;
      start_ns_ = detail::trace_now_ns();
    }
  }
  ~span() {
    if (name_ != nullptr)
      detail::trace_emit(name_, cat_, start_ns_,
                         detail::trace_now_ns() - start_ns_);
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

#else

/// Compiled-out span: an empty object the optimizer deletes entirely.
class span {
 public:
  explicit span(const char*, const char* = "aspen") noexcept {}
  span(const span&) = delete;
  span& operator=(const span&) = delete;
};

static_assert(sizeof(span) == 1,
              "with ASPEN_TELEMETRY off spans must carry no state");

#endif

/// Is the subsystem compiled in? (Runtime-queryable mirror of the macro.)
[[nodiscard]] constexpr bool compiled_in() noexcept {
  return ASPEN_TELEMETRY_ENABLED != 0;
}

}  // namespace aspen::telemetry
