// Emulation of the three UPC++ builds the paper compares.
//
// The paper evaluates:
//   - 2021.3.0        : last official release; deferred notifications only,
//                       plus one extra heap allocation per RMA targeting a
//                       directly-addressable global pointer, a dynamic
//                       is_local() check even on the SMP conduit, no pooled
//                       ready future<>, and no when_all conjoining opt.
//   - 2021.3.6 defer  : development snapshot with the orthogonal
//                       optimizations (allocation elimination, constexpr
//                       is_local on SMP, when_all opt, ready-future pool)
//                       but still deferring all notifications.
//   - 2021.3.6 eager  : same snapshot with eager notification by default.
//
// ASPEN implements all behaviors in one library and selects between them at
// runtime via this config, so a single benchmark binary can sweep versions.
// Every legacy behavior is genuinely performed (a real allocation, a real
// queue round trip), never a timing shim.
#pragma once

#include <string>
#include <string_view>

namespace aspen {

/// Identifiers for the three emulated library versions.
enum class emulated_version {
  v2021_3_0,
  v2021_3_6_defer,
  v2021_3_6_eager,
};

/// Returns a human-readable label ("2021.3.0", "2021.3.6 defer", ...).
[[nodiscard]] std::string_view to_string(emulated_version v) noexcept;

/// Per-flag behavioral configuration. Individual flags may be overridden
/// after construction for ablation studies.
struct version_config {
  /// Do the legacy as_future()/as_promise() factories request eager
  /// notification? (The paper's UPCXX_DEFER_COMPLETION macro restores
  /// deferred; compiling ASPEN with -DASPEN_DEFER_COMPLETION flips the
  /// default produced by version_config::current_default().)
  bool eager_default = true;

  /// Construct ready value-less futures from a pooled immortal cell instead
  /// of heap-allocating an internal promise cell (paper §III-B).
  bool ready_future_pool = true;

  /// Apply the when_all conjoining optimization (paper §III-C).
  bool when_all_opt = true;

  /// 2021.3.0 behavior: perform one additional heap allocation per RMA
  /// operation on a directly-addressable global pointer (the allocation the
  /// 2021.3.6 snapshot eliminated, §IV-A).
  bool extra_rma_alloc = false;

  /// 2021.3.0 behavior: always perform the dynamic locality check, even on
  /// the SMP conduit where 2021.3.6 resolves is_local without a branch
  /// (§IV-B).
  bool dynamic_is_local = false;

  /// Expose the non-fetching variants of fetching atomics (introduced by
  /// this work; absent from 2021.3.0, §III-B).
  bool nonfetching_atomics = true;

  /// ASPEN extension (beyond the paper, in the direction of its stated
  /// future work): recycle internal promise cells through a per-thread
  /// freelist instead of malloc/free. Off in all three emulated versions;
  /// see bench/ablation_cellpool.
  bool cell_recycling = false;

  [[nodiscard]] static version_config make(emulated_version v) noexcept;

  /// The configuration a fresh SPMD run starts with: 2021.3.6 eager, unless
  /// the library was compiled with -DASPEN_DEFER_COMPLETION, in which case
  /// the legacy factories default to deferred (2021.3.6 defer).
  [[nodiscard]] static version_config current_default() noexcept;
};

[[nodiscard]] bool operator==(const version_config&,
                              const version_config&) noexcept;

/// Pretty-print a config (used by benchmark headers).
[[nodiscard]] std::string describe(const version_config& v);

}  // namespace aspen
