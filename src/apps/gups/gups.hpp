// GUPS — the HPC Challenge RandomAccess benchmark, in the six variants the
// paper evaluates (§IV-B):
//
//   raw_cpp              single-node only: pure C++ table updates, UPC++
//                        machinery factored entirely out of the loop (the
//                        paper's upper bound);
//   manual_localization  per-update is_local() check + downcast, RMA only
//                        for genuinely remote targets (§II-C);
//   rma_promises         straight RMA ignoring locality; batch of gets
//                        tracked by a promise, then a batch of puts;
//   rma_futures          same, tracking each batch by conjoining futures;
//   amo_promises         remote atomic bit_xor updates tracked by a promise;
//   amo_futures          remote atomic bit_xor updates, conjoined futures.
//
// The update rule is HPCC's: table[ran & (N-1)] ^= ran over the standard
// LCG-over-GF(2) random stream. RMA variants are unsynchronized (lost
// updates permitted between ranks); AMO variants are exact.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/aspen.hpp"

namespace aspen::apps::gups {

inline constexpr std::uint64_t kPoly = 7;
inline constexpr std::int64_t kPeriod = 1317624576693539401LL;

/// Advance the HPCC random stream by one step.
[[nodiscard]] constexpr std::uint64_t next_random(std::uint64_t r) noexcept {
  return (r << 1) ^ (static_cast<std::int64_t>(r) < 0 ? kPoly : 0ULL);
}

/// The HPCC_starts function: value of the pseudo-random sequence at
/// position n (so each rank can jump to its own slice of the stream).
[[nodiscard]] std::uint64_t starts(std::int64_t n) noexcept;

enum class variant {
  raw_cpp,
  manual_localization,
  rma_promises,
  rma_futures,
  amo_promises,
  amo_futures,
  /// Extension beyond the paper's figures: updates shipped as
  /// fire-and-forget RPCs to the owning rank (the style of the upstream
  /// UPC++ GUPS repository's RPC version), with counter-based quiescence.
  rpc_ff,
};

[[nodiscard]] std::string_view to_string(variant v) noexcept;

/// The paper's six variants, in its presentation order.
[[nodiscard]] const std::vector<variant>& all_variants();

/// all_variants() plus the extension variants (rpc_ff).
[[nodiscard]] const std::vector<variant>& extended_variants();

struct params {
  /// Global table entries = 2^table_bits (must be >= log2(ranks); the table
  /// is split evenly, so 2^table_bits % ranks == 0 is required, i.e. ranks
  /// must be a power of two or divide the table size).
  unsigned table_bits = 20;
  /// Updates performed by each rank.
  std::uint64_t updates_per_rank = 1u << 18;
  /// In-flight operations per batch (the benchmark's look-ahead window).
  std::uint64_t batch = 512;
};

struct result {
  double seconds = 0.0;          // max across ranks, timed region only
  std::uint64_t updates = 0;     // total updates issued
  [[nodiscard]] double gups() const noexcept {
    return seconds > 0.0 ? static_cast<double>(updates) / seconds / 1e9 : 0.0;
  }
  [[nodiscard]] double mups() const noexcept {
    return seconds > 0.0 ? static_cast<double>(updates) / seconds / 1e6 : 0.0;
  }
};

/// The distributed update table. All member functions are collective unless
/// stated otherwise.
class table {
 public:
  explicit table(const params& p);
  ~table();

  table(const table&) = delete;
  table& operator=(const table&) = delete;

  /// Global pointer to entry `idx` (non-collective).
  [[nodiscard]] global_ptr<std::uint64_t> locate(std::uint64_t idx) const noexcept {
    const std::uint64_t owner = idx >> local_bits_;
    const std::uint64_t off = idx & (per_rank_ - 1);
    return slices_[owner] + static_cast<std::ptrdiff_t>(off);
  }

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t index_mask() const noexcept { return size_ - 1; }
  [[nodiscard]] std::uint64_t* local_slice() noexcept {
    return slices_[static_cast<std::size_t>(rank_me())].local();
  }
  [[nodiscard]] std::uint64_t per_rank() const noexcept { return per_rank_; }
  [[nodiscard]] const std::vector<global_ptr<std::uint64_t>>& slices()
      const noexcept {
    return slices_;
  }

  /// Reset every entry i to the value i (collective).
  void fill_identity();

  /// Count entries whose value differs from the identity fill (collective;
  /// result valid on all ranks). Running any variant twice returns the
  /// table to identity except for racy lost updates, so this implements
  /// HPCC-style verification.
  [[nodiscard]] std::uint64_t count_errors();

 private:
  std::uint64_t size_ = 0;
  std::uint64_t per_rank_ = 0;
  unsigned local_bits_ = 0;
  std::vector<global_ptr<std::uint64_t>> slices_;
};

/// Run one variant's timed update phase (collective). The atomic domain for
/// the AMO variants is constructed outside the timed region.
[[nodiscard]] result run_variant(variant v, table& t, const params& p);

}  // namespace aspen::apps::gups
