#include "apps/gups/gups.hpp"

#include <stdexcept>

#include "benchutil/timer.hpp"
#include "core/telemetry.hpp"

namespace aspen::apps::gups {

std::uint64_t starts(std::int64_t n) noexcept {
  while (n < 0) n += kPeriod;
  while (n > kPeriod) n -= kPeriod;
  if (n == 0) return 1;

  std::uint64_t m2[64];
  std::uint64_t temp = 1;
  for (auto& m : m2) {
    m = temp;
    temp = next_random(next_random(temp));
  }

  int i = 62;
  for (; i >= 0; --i)
    if ((n >> i) & 1) break;

  std::uint64_t ran = 2;
  while (i > 0) {
    temp = 0;
    for (int j = 0; j < 64; ++j)
      if ((ran >> j) & 1) temp ^= m2[j];
    ran = temp;
    --i;
    if ((n >> i) & 1) ran = next_random(ran);
  }
  return ran;
}

std::string_view to_string(variant v) noexcept {
  switch (v) {
    case variant::raw_cpp:
      return "raw C++";
    case variant::manual_localization:
      return "manual localization";
    case variant::rma_promises:
      return "pure RMA w/promises";
    case variant::rma_futures:
      return "pure RMA w/futures";
    case variant::amo_promises:
      return "atomics w/promises";
    case variant::amo_futures:
      return "atomics w/futures";
    case variant::rpc_ff:
      return "rpc fire-and-forget";
  }
  return "?";
}

const std::vector<variant>& all_variants() {
  static const std::vector<variant> v{
      variant::raw_cpp,          variant::manual_localization,
      variant::rma_promises,     variant::rma_futures,
      variant::amo_promises,     variant::amo_futures,
  };
  return v;
}

const std::vector<variant>& extended_variants() {
  static const std::vector<variant> v = [] {
    std::vector<variant> out = all_variants();
    out.push_back(variant::rpc_ff);
    return out;
  }();
  return v;
}

// ---------------------------------------------------------------------------
// table
// ---------------------------------------------------------------------------

table::table(const params& p) {
  const auto nranks = static_cast<std::uint64_t>(rank_n());
  size_ = std::uint64_t{1} << p.table_bits;
  if (size_ % nranks != 0)
    throw std::invalid_argument("gups: rank count must divide table size");
  per_rank_ = size_ / nranks;
  if ((per_rank_ & (per_rank_ - 1)) != 0)
    throw std::invalid_argument(
        "gups: per-rank slice must be a power of two (use a power-of-two "
        "rank count)");
  local_bits_ = 0;
  while ((std::uint64_t{1} << local_bits_) < per_rank_) ++local_bits_;

  auto mine = new_array<std::uint64_t>(per_rank_);
  // Gather every rank's slice pointer: rank r broadcasts in turn. (Setup
  // path, not timed.)
  slices_.resize(static_cast<std::size_t>(rank_n()));
  for (int r = 0; r < rank_n(); ++r)
    slices_[static_cast<std::size_t>(r)] = broadcast(mine, r);
  fill_identity();
}

table::~table() {
  barrier();
  deallocate(slices_[static_cast<std::size_t>(rank_me())]);
  barrier();
}

void table::fill_identity() {
  std::uint64_t* mine = local_slice();
  const std::uint64_t base =
      per_rank_ * static_cast<std::uint64_t>(rank_me());
  for (std::uint64_t i = 0; i < per_rank_; ++i) mine[i] = base + i;
  barrier();
}

std::uint64_t table::count_errors() {
  barrier();
  std::uint64_t* mine = local_slice();
  const std::uint64_t base =
      per_rank_ * static_cast<std::uint64_t>(rank_me());
  std::uint64_t local_errors = 0;
  for (std::uint64_t i = 0; i < per_rank_; ++i)
    if (mine[i] != base + i) ++local_errors;
  return allreduce_sum(local_errors);
}

// ---------------------------------------------------------------------------
// variants
// ---------------------------------------------------------------------------

namespace {

/// Per-rank slice of the HPCC random stream.
struct stream {
  std::uint64_t ran;
  explicit stream(const params& p)
      : ran(starts(static_cast<std::int64_t>(
            p.updates_per_rank * static_cast<std::uint64_t>(rank_me())))) {}
  std::uint64_t operator()() noexcept { return ran = next_random(ran); }
};

void run_raw_cpp(table& t, const params& p) {
  // Locality checks, downcasts and all library calls factored out of the
  // loop: precompute the raw base pointer of every slice.
  std::vector<std::uint64_t*> bases;
  bases.reserve(t.slices().size());
  for (const auto& gp : t.slices()) bases.push_back(gp.raw());
  const std::uint64_t mask = t.index_mask();
  const std::uint64_t per = t.per_rank();
  stream s(p);
  for (std::uint64_t u = 0; u < p.updates_per_rank; ++u) {
    const std::uint64_t ran = s();
    const std::uint64_t idx = ran & mask;
    bases[idx / per][idx % per] ^= ran;
  }
}

void run_manual_localization(table& t, const params& p) {
  const std::uint64_t mask = t.index_mask();
  stream s(p);
  promise<> pr;  // tracks the (rare) genuinely remote updates
  for (std::uint64_t u = 0; u < p.updates_per_rank; ++u) {
    const std::uint64_t ran = s();
    global_ptr<std::uint64_t> dest = t.locate(ran & mask);
    if (dest.is_local()) {
      *dest.local() ^= ran;
    } else {
      // Remote fallback: unsynchronized read-modify-write via RMA, as in
      // the original benchmark (lost updates permitted).
      std::uint64_t v = rget(dest).wait();
      rput(v ^ ran, dest, operation_cx::as_promise(pr));
    }
  }
  pr.finalize().wait();
}

void run_rma_promises(table& t, const params& p) {
  const std::uint64_t mask = t.index_mask();
  const std::uint64_t batch = p.batch;
  stream s(p);
  std::vector<std::uint64_t> rans(batch), vals(batch);
  std::vector<global_ptr<std::uint64_t>> dests(batch);
  for (std::uint64_t done = 0; done < p.updates_per_rank; done += batch) {
    const std::uint64_t n = std::min(batch, p.updates_per_rank - done);
    promise<> pg;
    for (std::uint64_t i = 0; i < n; ++i) {
      rans[i] = s();
      dests[i] = t.locate(rans[i] & mask);
      rget(dests[i], &vals[i], 1, operation_cx::as_promise(pg));
    }
    pg.finalize().wait();
    promise<> pp;
    for (std::uint64_t i = 0; i < n; ++i)
      rput(vals[i] ^ rans[i], dests[i], operation_cx::as_promise(pp));
    pp.finalize().wait();
  }
}

void run_rma_futures(table& t, const params& p) {
  const std::uint64_t mask = t.index_mask();
  const std::uint64_t batch = p.batch;
  stream s(p);
  std::vector<std::uint64_t> rans(batch), vals(batch);
  std::vector<global_ptr<std::uint64_t>> dests(batch);
  for (std::uint64_t done = 0; done < p.updates_per_rank; done += batch) {
    const std::uint64_t n = std::min(batch, p.updates_per_rank - done);
    future<> fg = make_future();
    for (std::uint64_t i = 0; i < n; ++i) {
      rans[i] = s();
      dests[i] = t.locate(rans[i] & mask);
      fg = when_all(fg, rget(dests[i], &vals[i], 1));
    }
    fg.wait();
    future<> fp = make_future();
    for (std::uint64_t i = 0; i < n; ++i)
      fp = when_all(fp, rput(vals[i] ^ rans[i], dests[i]));
    fp.wait();
  }
}

void run_amo_promises(atomic_domain<std::uint64_t>& ad, table& t,
                      const params& p) {
  const std::uint64_t mask = t.index_mask();
  const std::uint64_t batch = p.batch;
  stream s(p);
  for (std::uint64_t done = 0; done < p.updates_per_rank; done += batch) {
    const std::uint64_t n = std::min(batch, p.updates_per_rank - done);
    promise<> pr;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t ran = s();
      ad.bit_xor(t.locate(ran & mask), ran, operation_cx::as_promise(pr));
    }
    pr.finalize().wait();
  }
}

void run_amo_futures(atomic_domain<std::uint64_t>& ad, table& t,
                     const params& p) {
  const std::uint64_t mask = t.index_mask();
  const std::uint64_t batch = p.batch;
  stream s(p);
  for (std::uint64_t done = 0; done < p.updates_per_rank; done += batch) {
    const std::uint64_t n = std::min(batch, p.updates_per_rank - done);
    future<> f = make_future();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t ran = s();
      f = when_all(f, ad.bit_xor(t.locate(ran & mask), ran));
    }
    f.wait();
  }
}

/// Per-rank count of RPC updates applied to this rank's slice (used for
/// quiescence detection by the rpc_ff variant).
thread_local std::uint64_t rpc_updates_received = 0;

void run_rpc_ff(table& t, const params& p) {
  const std::uint64_t mask = t.index_mask();
  stream s(p);
  rpc_updates_received = 0;
  barrier();  // everyone reset before any update can arrive... (see below)
  for (std::uint64_t u = 0; u < p.updates_per_rank; ++u) {
    const std::uint64_t ran = s();
    const auto dest = t.locate(ran & mask);
    if (dest.where() == rank_me()) {
      *dest.local() ^= ran;  // self-targeted: apply directly
      ++rpc_updates_received;
    } else {
      rpc_ff(dest.where(), [](global_ptr<std::uint64_t> gp,
                              std::uint64_t val) {
        *gp.local() ^= val;
        ++rpc_updates_received;
      }, dest, ran);
    }
    if ((u & 0xFF) == 0) (void)progress();
  }
  // Quiescence: total applied updates must reach the global issue count.
  const std::uint64_t expected =
      p.updates_per_rank * static_cast<std::uint64_t>(rank_n());
  while (allreduce_sum(rpc_updates_received) < expected) (void)progress();
}

}  // namespace

result run_variant(variant v, table& t, const params& p) {
  telemetry::span sp(to_string(v).data(), "gups");
  // The atomic domain is constructed outside the timed region, as the real
  // benchmark does.
  atomic_domain<std::uint64_t> ad({gex::amo_op::bxor, gex::amo_op::load});

  barrier();
  bench::stopwatch sw;
  switch (v) {
    case variant::raw_cpp:
      run_raw_cpp(t, p);
      break;
    case variant::manual_localization:
      run_manual_localization(t, p);
      break;
    case variant::rma_promises:
      run_rma_promises(t, p);
      break;
    case variant::rma_futures:
      run_rma_futures(t, p);
      break;
    case variant::amo_promises:
      run_amo_promises(ad, t, p);
      break;
    case variant::amo_futures:
      run_amo_futures(ad, t, p);
      break;
    case variant::rpc_ff:
      run_rpc_ff(t, p);
      break;
  }
  const double local = sw.seconds();
  barrier();
  result r;
  r.seconds = allreduce_max(local);
  r.updates =
      p.updates_per_rank * static_cast<std::uint64_t>(rank_n());
  return r;
}

}  // namespace aspen::apps::gups
