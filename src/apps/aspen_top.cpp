// aspen-top — a rank-0-side live console for a running multi-process job.
//
// Drives a small mixed workload (self/neighbor AMOs, RMA, RPC, when_all)
// across N ranks under `aspen-run` and, between rounds, renders rank 0's
// live-telemetry collector: per-rank transport gauges and disposition
// counts, plus job-wide completion-latency percentiles per disposition and
// the wire/progress/sendq streams. Everything displayed comes from
// telemetry::live::job_snapshot()/rank_gauges() — no sidecar files.
//
// Launched outside aspen-run it re-execs itself under the launcher
// (`aspen-run -n N aspen-top ...`), mirroring bench/offnode_branch. Flags:
//
//   -n N            ranks to launch (default 4; parent mode only)
//   --once          render exactly one frame (no screen clearing) and exit
//   --interval MS   refresh interval (else ASPEN_TOP_INTERVAL_MS, else 500)
//   --rounds R      traffic rounds to run (default 20; 3 with --once)
//   --conduit C     tcp (default) or shm; the shm% column shows the share
//                   of each rank's AM traffic that rode the shared-memory
//                   rings (always 0.0 under tcp)
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "benchutil/table.hpp"
#include "benchutil/telemetry_report.hpp"
#include "core/aspen.hpp"
#include "core/telemetry_live.hpp"
#include "net/endpoint.hpp"

namespace {

using namespace aspen;

struct top_options {
  int nranks = 4;
  bool once = false;
  std::uint32_t interval_ms = 0;  // 0 = resolve from env / default below
  int rounds = 0;                 // 0 = default per mode
  bool shm = false;               // --conduit shm
};

std::uint32_t resolve_interval(const top_options& o) {
  if (o.interval_ms != 0) return o.interval_ms;
  if (const char* s = std::getenv("ASPEN_TOP_INTERVAL_MS");
      s != nullptr && *s != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end != s && *end == '\0' && v != 0)
      return static_cast<std::uint32_t>(std::min(v, 60'000ul));
  }
  return 500;
}

top_options parse_args(int argc, char** argv) {
  top_options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--once") {
      o.once = true;
    } else if (a == "-n" && i + 1 < argc) {
      o.nranks = std::max(1, std::atoi(argv[++i]));
    } else if (a == "--interval" && i + 1 < argc) {
      o.interval_ms = static_cast<std::uint32_t>(
          std::max(1, std::atoi(argv[++i])));
    } else if (a == "--rounds" && i + 1 < argc) {
      o.rounds = std::max(1, std::atoi(argv[++i]));
    } else if (a == "--conduit" && i + 1 < argc) {
      const std::string c = argv[++i];
      if (c != "tcp" && c != "shm") {
        std::fprintf(stderr, "aspen-top: unknown conduit \"%s\"\n",
                     c.c_str());
        std::exit(2);
      }
      o.shm = c == "shm";
    } else {
      std::fprintf(stderr,
                   "aspen-top: unknown argument \"%s\"\n"
                   "usage: aspen-top [-n N] [--once] [--interval MS] "
                   "[--rounds R] [--conduit tcp|shm]\n",
                   a.c_str());
      std::exit(2);
    }
  }
  if (o.rounds == 0) o.rounds = o.once ? 3 : 20;
  return o;
}

std::string fmt_ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 10'000'000)
    std::snprintf(buf, sizeof buf, "%.1fms", static_cast<double>(ns) / 1e6);
  else if (ns >= 10'000)
    std::snprintf(buf, sizeof buf, "%.1fus", static_cast<double>(ns) / 1e3);
  else
    std::snprintf(buf, sizeof buf, "%lluns",
                  static_cast<unsigned long long>(ns));
  return buf;
}

void add_lat_row(bench::table& t, const char* name,
                 const telemetry::lat_hist& h) {
  if (h.total() == 0) return;
  t.add_row({name, std::to_string(h.total()), fmt_ns(h.percentile_ns(50.0)),
             fmt_ns(h.percentile_ns(99.0)), fmt_ns(h.max_ns)});
}

/// Watchdog health gauge -> a one-glyph column: healthy ranks show a dot,
/// a rank inside a detected stall shows "!", a rank that stalled earlier
/// this region but has recovered shows "~".
const char* health_glyph(std::uint64_t wd_state) {
  switch (wd_state) {
    case 1: return "!";
    case 2: return "~";
    default: return ".";  // ASCII so the byte-width table stays aligned
  }
}

/// One dashboard frame from rank 0's live collector.
void render_frame(int nranks, int frame, int rounds, bool clear_screen) {
  if (clear_screen) std::fputs("\033[2J\033[H", stdout);
  const telemetry::snapshot job = telemetry::live::job_snapshot();
  std::printf("aspen-top — %d ranks, frame %d/%d\n", nranks, frame, rounds);

  // trc/s is a per-frame rate, so remember the previous frame's sampled-op
  // totals and timestamp (rank 0 renders every frame from one thread).
  static std::vector<std::uint64_t> prev_sampled;
  static std::chrono::steady_clock::time_point prev_when;
  const auto now = std::chrono::steady_clock::now();
  const double dt =
      prev_sampled.empty()
          ? 0.0
          : std::chrono::duration<double>(now - prev_when).count();
  prev_sampled.resize(static_cast<std::size_t>(nranks), 0);

  bench::table ranks({"rank", "hp", "updates", "eager", "deferred", "ratio",
                      "shm%", "agg", "trc/s", "plane", "sqe_saved", "sendq",
                      "staged", "lpc_depth"});
  for (int r = 0; r < nranks; ++r) {
    const telemetry::snapshot s = telemetry::live::rank_snapshot(r);
    const telemetry::live::gauges g = telemetry::live::rank_gauges(r);
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.3f", s.eager_bypass_ratio());
    // Share of this rank's AM traffic that rode the shared-memory rings
    // instead of a socket (0.0 on tcp or with the shm fabric down).
    const std::uint64_t net_sent = s.get(telemetry::counter::net_msgs_sent);
    char shm_pct[16];
    std::snprintf(shm_pct, sizeof shm_pct, "%.1f",
                  net_sent == 0
                      ? 0.0
                      : 100.0 *
                            static_cast<double>(
                                s.get(telemetry::counter::shm_msgs_sent)) /
                            static_cast<double>(net_sent));
    // Sampled-trace throughput since the previous frame; "-" until a
    // second frame gives the rate a baseline, "0" when tracing is off.
    const std::uint64_t sampled =
        s.get(telemetry::counter::otrace_sampled);
    char trc[24];
    if (dt <= 0.0) {
      std::snprintf(trc, sizeof trc, "-");
    } else {
      const std::uint64_t was = prev_sampled[static_cast<std::size_t>(r)];
      std::snprintf(trc, sizeof trc, "%.0f",
                    sampled >= was
                        ? static_cast<double>(sampled - was) / dt
                        : 0.0);
    }
    prev_sampled[static_cast<std::size_t>(r)] = sampled;
    ranks.add_row({std::to_string(r), health_glyph(g.wd_state),
                   std::to_string(telemetry::live::rank_updates(r)),
                   std::to_string(s.get(telemetry::counter::cx_eager_taken)),
                   std::to_string(
                       s.get(telemetry::counter::cx_deferred_queued) +
                       s.get(telemetry::counter::cx_remote_async)),
                   ratio, shm_pct,
                   std::to_string(
                       s.get(telemetry::counter::agg_frames_coalesced)),
                   trc,
                   // Data plane ("poll"/"uring") and the syscalls the uring
                   // backend saved vs poll (batched SQEs + multishot hits).
                   g.backend != 0 ? "uring" : "poll",
                   std::to_string(
                       s.get(telemetry::counter::uring_syscalls_saved)),
                   std::to_string(g.sendq_bytes),
                   std::to_string(g.staged_msgs),
                   std::to_string(g.lpc_mailbox_depth)});
  }
  prev_when = now;
  ranks.print(std::cout);

  bench::table lat({"latency stream (job)", "count", "p50", "p99", "max"});
  add_lat_row(lat, "eager (all op classes)",
              job.lat_by_disposition(telemetry::disposition::eager));
  add_lat_row(lat, "deferred (all op classes)",
              job.lat_by_disposition(telemetry::disposition::deferred));
  add_lat_row(lat, "wire_delivery",
              job.lat_of(telemetry::lat_stream::wire_delivery));
  add_lat_row(lat, "shm_delivery",
              job.lat_of(telemetry::lat_stream::shm_delivery));
  add_lat_row(lat, "agg_batch_fill",
              job.lat_of(telemetry::lat_stream::agg_batch_fill));
  add_lat_row(lat, "progress_gap",
              job.lat_of(telemetry::lat_stream::progress_gap));
  add_lat_row(lat, "sendq_residency",
              job.lat_of(telemetry::lat_stream::sendq_residency));
  lat.print(std::cout);
  std::fflush(stdout);
}

/// Pump the progress engine for ~ms milliseconds (rank 0 keeps collecting
/// sibling updates while it waits out the refresh interval).
void progress_for(std::uint32_t ms) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
    if (aspen::progress() == 0) std::this_thread::yield();
  }
}

/// One round of mixed traffic: a self-targeted AMO (eager, local), a
/// neighbor AMO + RMA put/get + RPC (deferred, over the wire), and a
/// when_all conjunction.
void traffic_round(atomic_domain<std::uint64_t>& ad,
                   const std::vector<global_ptr<std::uint64_t>>& slots) {
  const int me = rank_me();
  const int n = rank_n();
  const int nb = (me + 1) % n;
  for (int i = 0; i < 32; ++i) {
    auto self_amo = ad.fetch_add(slots[static_cast<std::size_t>(me)], 1,
                                 operation_cx::as_future());
    auto nb_amo = ad.fetch_add(slots[static_cast<std::size_t>(nb)], 1,
                               operation_cx::as_future());
    when_all(std::move(self_amo), std::move(nb_amo)).wait();
  }
  for (int i = 0; i < 8; ++i) {
    rput(std::uint64_t{0}, slots[static_cast<std::size_t>(nb)],
         operation_cx::as_future())
        .wait();
    (void)rget(slots[static_cast<std::size_t>(nb)], operation_cx::as_future())
        .wait();
  }
  if (n > 1) {
    for (int i = 0; i < 4; ++i)
      (void)rpc(nb, [](std::uint64_t x) { return x + 1; },
                static_cast<std::uint64_t>(i))
          .wait();
  }
}

int run_monitored_job(const top_options& o) {
  const char* nr = std::getenv(net::kEnvNranks);
  const int nranks = nr != nullptr ? std::atoi(nr) : o.nranks;
  const std::uint32_t interval = resolve_interval(o);
  gex::config gcfg;
  gcfg.transport = o.shm ? gex::conduit::shm : gex::conduit::tcp;

  aspen::spmd(nranks, gcfg, [&] {
    atomic_domain<std::uint64_t> ad({gex::amo_op::fadd});
    std::vector<global_ptr<std::uint64_t>> slots(
        static_cast<std::size_t>(rank_n()));
    for (int r = 0; r < rank_n(); ++r) {
      global_ptr<std::uint64_t> gp;
      if (rank_me() == r) gp = new_<std::uint64_t>(0);
      slots[static_cast<std::size_t>(r)] = broadcast(gp, r);
    }
    barrier();
    for (int round = 1; round <= o.rounds; ++round) {
      traffic_round(ad, slots);
      barrier();
      if (rank_me() == 0) {
        // Let sibling periodic pushes land, then draw. --once draws only
        // the final frame so the smoke-test output stays one screen.
        progress_for(o.once && round < o.rounds ? 1 : interval);
        if (!o.once || round == o.rounds) {
          // Rank 0 never ships itself update frames; refresh its collector
          // slot in place (absolute totals, same as the region-exit path)
          // so its own row is as live as everyone else's.
          telemetry::live::collector_note_local(
              telemetry::live::capture_total(),
              net::endpoint::instance()->live_gauges());
          render_frame(rank_n(), round, o.rounds, /*clear_screen=*/!o.once);
        }
      }
      barrier();
    }
    barrier();
    if (rank_me() < static_cast<int>(slots.size()))
      delete_(slots[static_cast<std::size_t>(rank_me())]);
  });
  return 0;
}

/// Parent mode: re-exec under aspen-run with the live plane enabled.
int relaunch(const top_options& o, const char* argv0) {
  // The dashboard is meaningless without the live plane; default to a push
  // interval well under the refresh rate, but respect an explicit setting.
  ::setenv("ASPEN_TELEMETRY_INTERVAL_MS", "20", /*overwrite=*/0);

  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof self - 1);
  if (n <= 0) {
    std::snprintf(self, sizeof self, "%s", argv0);
  } else {
    self[n] = '\0';
  }
  std::string launcher;
  if (const char* env = std::getenv("ASPEN_RUN")) {
    launcher = env;
  } else {
    // Default build layout: src/aspen-top next to src/aspen-run.
    const std::string dir(self, std::string(self).find_last_of('/'));
    launcher = dir + "/aspen-run";
  }
  if (::access(launcher.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "aspen-top: launcher not found at %s (set ASPEN_RUN)\n",
                 launcher.c_str());
    return 1;
  }
  std::string cmd = launcher + " -n " + std::to_string(o.nranks) + " " + self;
  if (o.once) cmd += " --once";
  if (o.shm) cmd += " --conduit shm";
  cmd += " --rounds " + std::to_string(o.rounds);
  cmd += " --interval " + std::to_string(resolve_interval(o));
  const int rc = std::system(cmd.c_str());
  return rc == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const top_options o = parse_args(argc, argv);
  if (!telemetry::compiled_in()) {
    std::fprintf(stderr,
                 "aspen-top: this build has ASPEN_TELEMETRY off; nothing to "
                 "display (configure with -DASPEN_TELEMETRY=ON)\n");
    return 1;
  }
  if (net::endpoint::launched()) return run_monitored_job(o);
  return relaunch(o, argv[0]);
}
