#include "apps/matching/graph_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace aspen::apps::matching {

void save_graph(const csr_graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_graph: cannot open " + path);
  out.write(kGraphMagic, sizeof(kGraphMagic));
  const auto nv = static_cast<std::uint64_t>(g.num_vertices());
  const auto ne = static_cast<std::uint64_t>(g.num_edges());
  out.write(reinterpret_cast<const char*>(&nv), sizeof(nv));
  out.write(reinterpret_cast<const char*>(&ne), sizeof(ne));
  for (const edge& e : g.edge_list()) {
    const auto u = static_cast<std::int64_t>(e.u);
    const auto v = static_cast<std::int64_t>(e.v);
    out.write(reinterpret_cast<const char*>(&u), sizeof(u));
    out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    out.write(reinterpret_cast<const char*>(&e.w), sizeof(e.w));
  }
  if (!out) throw std::runtime_error("save_graph: write failed for " + path);
}

csr_graph load_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_graph: cannot open " + path);
  char magic[sizeof(kGraphMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kGraphMagic, sizeof(magic)) != 0)
    throw std::runtime_error("load_graph: bad magic in " + path);
  std::uint64_t nv = 0, ne = 0;
  in.read(reinterpret_cast<char*>(&nv), sizeof(nv));
  in.read(reinterpret_cast<char*>(&ne), sizeof(ne));
  if (!in) throw std::runtime_error("load_graph: truncated header");
  std::vector<edge> edges;
  edges.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    std::int64_t u = 0, v = 0;
    double w = 0.0;
    in.read(reinterpret_cast<char*>(&u), sizeof(u));
    in.read(reinterpret_cast<char*>(&v), sizeof(v));
    in.read(reinterpret_cast<char*>(&w), sizeof(w));
    if (!in) throw std::runtime_error("load_graph: truncated edge list");
    edges.push_back({u, v, w});
  }
  return csr_graph::from_edges(static_cast<vid>(nv), std::move(edges));
}

}  // namespace aspen::apps::matching
