#include "apps/matching/matcher.hpp"

#include <algorithm>

#include "benchutil/timer.hpp"
#include "core/telemetry.hpp"

namespace aspen::apps::matching {

// ---------------------------------------------------------------------------
// Sequential reference: greedy on globally sorted edges.
// ---------------------------------------------------------------------------

std::vector<vid> solve_sequential(const csr_graph& g) {
  std::vector<edge> edges = g.edge_list();
  std::sort(edges.begin(), edges.end(), [](const edge& a, const edge& b) {
    if (a.w != b.w) return a.w > b.w;
    // Deterministic tie-break consistent with heavier(): smaller endpoint
    // pair first.
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  std::vector<vid> mate(static_cast<std::size_t>(g.num_vertices()),
                        kUnmatched);
  for (const edge& e : edges) {
    if (mate[static_cast<std::size_t>(e.u)] == kUnmatched &&
        mate[static_cast<std::size_t>(e.v)] == kUnmatched) {
      mate[static_cast<std::size_t>(e.u)] = e.v;
      mate[static_cast<std::size_t>(e.v)] = e.u;
    }
  }
  return mate;
}

double matching_weight(const csr_graph& g, const std::vector<vid>& mate) {
  double total = 0.0;
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const vid m = mate[static_cast<std::size_t>(v)];
    if (m > v) {  // count each matched pair once
      const auto ns = g.neighbors(v);
      const auto ws = g.weights(v);
      for (std::size_t i = 0; i < ns.size(); ++i) {
        if (ns[i] == m) {
          total += ws[i];
          break;
        }
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Distributed pointer-based locally-dominant matching.
// ---------------------------------------------------------------------------

std::vector<vid> solve_distributed(const dist_graph& g, solve_stats& stats) {
  telemetry::span solve_sp("match_solve", "matching");
  const vid lo = g.lo();
  const vid owned = g.owned();
  const auto nranks = rank_n();
  const auto me = rank_me();

  // Shared per-rank slices of candidate[] and matched[], plus directories.
  auto cand_slice = new_array<vid>(static_cast<std::size_t>(std::max<vid>(owned, 1)));
  auto match_slice = new_array<vid>(static_cast<std::size_t>(std::max<vid>(owned, 1)));
  std::vector<global_ptr<vid>> cand_dir(static_cast<std::size_t>(nranks));
  std::vector<global_ptr<vid>> match_dir(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    cand_dir[static_cast<std::size_t>(r)] = broadcast(cand_slice, r);
    match_dir[static_cast<std::size_t>(r)] = broadcast(match_slice, r);
  }
  vid* cand = cand_slice.local();
  vid* matched = match_slice.local();

  auto remote_ptr = [&](const std::vector<global_ptr<vid>>& dir, vid u) {
    const int owner = g.owner_of(u);
    return dir[static_cast<std::size_t>(owner)] +
           static_cast<std::ptrdiff_t>(u - static_cast<vid>(owner) * g.block());
  };

  // Per-vertex cursor into the heaviest-first adjacency.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(owned), 0);
  for (vid i = 0; i < owned; ++i) {
    cand[i] = kUnmatched;
    matched[i] = g.degree(i) == 0 ? kExhausted : kUnmatched;
  }

  stats = solve_stats{};
  barrier();
  bench::stopwatch sw;

  // Scratch reused across rounds.
  std::vector<vid> wave, next_wave, proposers;
  std::vector<vid> read_buf;
  for (vid i = 0; i < owned; ++i)
    if (matched[i] == kUnmatched) wave.push_back(lo + i);

  std::vector<vid> alive = wave;
  int rounds = 0;
  while (true) {
    telemetry::span round_sp("match_round", "matching");
    std::uint64_t changes = 0;

    // Phase A: advance each alive vertex's candidate past dead neighbors
    // (in waves so each hop's reads are batched under one promise).
    wave = alive;
    while (!wave.empty()) {
      read_buf.assign(wave.size(), kUnmatched);
      promise<> p;
      for (std::size_t i = 0; i < wave.size(); ++i) {
        const vid v = wave[i];
        const vid u = g.neighbors(v - lo)[cursor[static_cast<std::size_t>(v - lo)]];
        if (g.owner_of(u) == me) {
          read_buf[i] = matched[u - lo];
          ++stats.direct_reads;
        } else {
          rget(remote_ptr(match_dir, u), &read_buf[i], 1,
               operation_cx::as_promise(p));
          ++stats.rma_gets;
        }
      }
      p.finalize().wait();
      next_wave.clear();
      for (std::size_t i = 0; i < wave.size(); ++i) {
        const vid v = wave[i];
        const auto li = static_cast<std::size_t>(v - lo);
        const vid u = g.neighbors(v - lo)[cursor[li]];
        const vid mu = read_buf[i];
        if (mu != kUnmatched && mu != v) {
          // Neighbor is matched elsewhere or exhausted: skip it.
          ++cursor[li];
          ++changes;
          if (cursor[li] == g.degree(v - lo)) {
            matched[v - lo] = kExhausted;
            cand[v - lo] = kExhausted;
          } else {
            next_wave.push_back(v);
          }
        } else if (cand[li] != u) {
          cand[li] = u;
          ++changes;
        }
      }
      wave.swap(next_wave);
    }

    // Phase B: detect mutual proposals.
    proposers.clear();
    for (const vid v : alive)
      if (matched[v - lo] == kUnmatched && cand[v - lo] >= 0)
        proposers.push_back(v);
    read_buf.assign(proposers.size(), kUnmatched);
    {
      promise<> p;
      for (std::size_t i = 0; i < proposers.size(); ++i) {
        const vid u = cand[proposers[i] - lo];
        if (g.owner_of(u) == me) {
          read_buf[i] = cand[u - lo];
          ++stats.direct_reads;
        } else {
          rget(remote_ptr(cand_dir, u), &read_buf[i], 1,
               operation_cx::as_promise(p));
          ++stats.rma_gets;
        }
      }
      p.finalize().wait();
    }
    for (std::size_t i = 0; i < proposers.size(); ++i) {
      const vid v = proposers[i];
      if (read_buf[i] == v) {
        matched[v - lo] = cand[v - lo];
        ++changes;
      }
    }

    // Compact the alive set.
    std::erase_if(alive, [&](vid v) { return matched[v - lo] != kUnmatched; });

    ++rounds;
    if (allreduce_sum(changes) == 0) break;
  }

  const double local_seconds = sw.seconds();
  barrier();
  stats.rounds = rounds;
  stats.seconds = allreduce_max(local_seconds);

  std::vector<vid> result(matched, matched + owned);
  for (vid& m : result)
    if (m == kExhausted) m = kUnmatched;
  barrier();
  deallocate(cand_slice);
  deallocate(match_slice);
  barrier();
  return result;
}

std::vector<vid> gather_mates(const dist_graph& g,
                              const std::vector<vid>& local) {
  std::vector<vid> full;
  full.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (int r = 0; r < rank_n(); ++r) {
    const std::vector<vid> part =
        broadcast_vector(rank_me() == r ? local : std::vector<vid>{}, r);
    full.insert(full.end(), part.begin(), part.end());
  }
  return full;
}

}  // namespace aspen::apps::matching
