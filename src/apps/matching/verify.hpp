// Verification of matching results.
#pragma once

#include <string>
#include <vector>

#include "apps/matching/graph.hpp"

namespace aspen::apps::matching {

struct verify_report {
  bool valid = false;        // symmetric, edge-supported, no double-matching
  bool maximal = false;      // no edge with both endpoints unmatched
  double weight = 0.0;
  std::string error;         // first violation found, if any
};

/// Check structural validity (and maximality) of a mate array against g.
[[nodiscard]] verify_report verify_matching(const csr_graph& g,
                                            const std::vector<vid>& mate);

/// True if two matchings pair exactly the same vertices. For distinct edge
/// weights the distributed locally-dominant matching must equal the
/// sequential greedy one.
[[nodiscard]] bool same_matching(const std::vector<vid>& a,
                                 const std::vector<vid>& b);

}  // namespace aspen::apps::matching
