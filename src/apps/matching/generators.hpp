// Deterministic graph generators spanning the locality spectrum of the
// paper's Fig. 8 inputs (§IV-C). SuiteSparse matrices are not available
// offline, so each input is replaced by a synthetic graph with matched
// degree and locality structure (see DESIGN.md §1):
//
//   channel  -> 3-D lattice (nearly all edges between nearby vertex ids;
//               the paper: "most updates are to memory owned by the same
//               process");
//   delaunay -> random geometric graph, avg degree ~6 (planar-like);
//   venturi  -> sparser random geometric graph, avg degree ~4;
//   youtube  -> preferential-attachment power-law graph (highly non-local);
//   random   -> the paper's own recipe: geometric cutoff graph plus 15
//               extra random long edges per 100 local edges (--n ... --p 15).
//
// All generators are deterministic in (parameters, seed) so every rank can
// regenerate the identical graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/matching/graph.hpp"

namespace aspen::apps::matching {

/// SplitMix64: small deterministic PRNG used by all generators.
class splitmix64 {
 public:
  explicit constexpr splitmix64(std::uint64_t seed) noexcept : x_(seed) {}
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (x_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  /// Uniform double in (0, 1).
  constexpr double next_unit() noexcept {
    return (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  }
  /// Uniform integer in [0, n).
  constexpr std::uint64_t next_below(std::uint64_t n) noexcept {
    return next() % n;
  }

 private:
  std::uint64_t x_;
};

/// Deterministic per-edge weight in (0, 1) from the endpoint pair.
[[nodiscard]] double edge_weight(vid u, vid v, std::uint64_t seed) noexcept;

/// 3-D lattice of nx*ny*nz vertices with 6-neighbor connectivity
/// (channel-flow analogue: maximal id-locality).
[[nodiscard]] csr_graph gen_channel(vid nx, vid ny, vid nz,
                                    std::uint64_t seed = 0x5EED);

/// Random geometric graph: n points in the unit square, edges within
/// `radius`, vertex ids assigned by spatial position (row-major grid cell)
/// so that id-contiguous partitions are spatially coherent.
[[nodiscard]] csr_graph gen_rgg(vid n, double radius,
                                std::uint64_t seed = 0x5EED);

/// RGG radius giving expected average degree `deg`.
[[nodiscard]] double rgg_radius_for_degree(vid n, double deg) noexcept;

/// Preferential-attachment (Barabási–Albert) power-law graph: each new
/// vertex attaches to `m` existing vertices biased by degree
/// (youtube-community analogue: highly non-local).
[[nodiscard]] csr_graph gen_powerlaw(vid n, int m, std::uint64_t seed = 0x5EED);

/// The paper's random-input recipe: geometric cutoff edges plus
/// `pct_long` additional uniformly random edges per 100 cutoff edges.
[[nodiscard]] csr_graph gen_paper_random(vid n, int pct_long,
                                         std::uint64_t seed = 0x5EED);

/// Randomly relabel `fraction` of the vertices (one random cyclic shift of
/// the chosen ids). Injects cross-partition adjacency into an otherwise
/// spatially-ordered graph — standing in for the imperfect orderings of
/// real SuiteSparse matrices, whose varying locality is what differentiates
/// the paper's Fig. 8 inputs.
[[nodiscard]] csr_graph relabel_fraction(const csr_graph& g, double fraction,
                                         std::uint64_t seed);

/// A named input set scaled to `scale` (1.0 = quick defaults; the paper's
/// graphs are 1.1M-4.8M vertices — reachable with ASPEN_BENCH_SCALE).
struct named_input {
  std::string name;
  csr_graph graph;
};
[[nodiscard]] std::vector<named_input> fig8_inputs(double scale);

}  // namespace aspen::apps::matching
