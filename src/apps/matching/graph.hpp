// Graph representations for the half-approximate maximum-weight matching
// application (paper §IV-C).
//
// Graphs are undirected with positive, effectively-distinct edge weights
// (ties are broken deterministically by endpoint ids, so the locally-
// dominant matching is unique — which is what makes the distributed result
// verifiable against the sequential reference).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aspen::apps::matching {

using vid = std::int64_t;

inline constexpr vid kUnmatched = -1;
inline constexpr vid kExhausted = -2;  // no eligible neighbor remains

struct edge {
  vid u;
  vid v;
  double w;
};

/// Deterministic strict weak order on (weight, neighbor id): used to sort
/// adjacency lists by desirability and to break weight ties.
[[nodiscard]] constexpr bool heavier(double w1, vid n1, double w2,
                                     vid n2) noexcept {
  if (w1 != w2) return w1 > w2;
  return n1 < n2;
}

/// Shared-memory CSR graph; adjacency sorted heaviest-first. Used by the
/// sequential reference matcher and as the construction input of the
/// distributed graph.
class csr_graph {
 public:
  /// Build from an edge list: edges are deduplicated (by unordered endpoint
  /// pair, keeping the first weight) and symmetrized; self-loops dropped.
  [[nodiscard]] static csr_graph from_edges(vid nv, std::vector<edge> edges);

  [[nodiscard]] vid num_vertices() const noexcept { return nv_; }
  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return nbr_.size() / 2;
  }

  [[nodiscard]] std::span<const vid> neighbors(vid v) const noexcept {
    return {nbr_.data() + offs_[static_cast<std::size_t>(v)],
            nbr_.data() + offs_[static_cast<std::size_t>(v) + 1]};
  }
  [[nodiscard]] std::span<const double> weights(vid v) const noexcept {
    return {w_.data() + offs_[static_cast<std::size_t>(v)],
            w_.data() + offs_[static_cast<std::size_t>(v) + 1]};
  }
  [[nodiscard]] std::size_t degree(vid v) const noexcept {
    return offs_[static_cast<std::size_t>(v) + 1] -
           offs_[static_cast<std::size_t>(v)];
  }

  /// The unique deduplicated symmetrized edge list (u < v), unsorted.
  [[nodiscard]] std::vector<edge> edge_list() const;

 private:
  vid nv_ = 0;
  std::vector<std::size_t> offs_;
  std::vector<vid> nbr_;
  std::vector<double> w_;
};

/// The rank-local portion of a block-partitioned distributed graph. Every
/// rank constructs it from the same (deterministically generated) edge
/// list, keeping only the adjacency of its owned contiguous vertex block.
class dist_graph {
 public:
  /// Collective (must be called inside spmd by every rank with identical
  /// inputs).
  [[nodiscard]] static dist_graph build(const csr_graph& g);

  [[nodiscard]] vid num_vertices() const noexcept { return nv_; }
  [[nodiscard]] vid block() const noexcept { return block_; }
  [[nodiscard]] vid lo() const noexcept { return lo_; }
  [[nodiscard]] vid hi() const noexcept { return hi_; }
  [[nodiscard]] vid owned() const noexcept { return hi_ - lo_; }

  [[nodiscard]] int owner_of(vid v) const noexcept {
    const vid o = v / block_;
    return static_cast<int>(o);
  }

  [[nodiscard]] std::span<const vid> neighbors(vid owned_v) const noexcept {
    return {nbr_.data() + offs_[static_cast<std::size_t>(owned_v)],
            nbr_.data() + offs_[static_cast<std::size_t>(owned_v) + 1]};
  }
  [[nodiscard]] std::size_t degree(vid owned_v) const noexcept {
    return offs_[static_cast<std::size_t>(owned_v) + 1] -
           offs_[static_cast<std::size_t>(owned_v)];
  }

  /// Fraction of local adjacency entries whose neighbor lives on another
  /// rank — the graph-locality statistic the paper uses to explain Fig. 8.
  [[nodiscard]] double cross_rank_fraction() const noexcept {
    return nbr_.empty() ? 0.0
                        : static_cast<double>(cross_entries_) /
                              static_cast<double>(nbr_.size());
  }

 private:
  vid nv_ = 0;
  vid block_ = 0;
  vid lo_ = 0;
  vid hi_ = 0;
  std::size_t cross_entries_ = 0;
  std::vector<std::size_t> offs_;  // per owned vertex
  std::vector<vid> nbr_;           // global ids, heaviest-first
};

}  // namespace aspen::apps::matching
