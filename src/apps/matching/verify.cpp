#include "apps/matching/verify.hpp"

#include <sstream>

#include "apps/matching/matcher.hpp"

namespace aspen::apps::matching {

verify_report verify_matching(const csr_graph& g,
                              const std::vector<vid>& mate) {
  verify_report r;
  if (mate.size() != static_cast<std::size_t>(g.num_vertices())) {
    r.error = "mate array size mismatch";
    return r;
  }
  for (vid v = 0; v < g.num_vertices(); ++v) {
    const vid m = mate[static_cast<std::size_t>(v)];
    if (m == kUnmatched) continue;
    if (m < 0 || m >= g.num_vertices()) {
      std::ostringstream os;
      os << "vertex " << v << " matched to out-of-range " << m;
      r.error = os.str();
      return r;
    }
    if (mate[static_cast<std::size_t>(m)] != v) {
      std::ostringstream os;
      os << "asymmetric match: " << v << "->" << m << " but " << m << "->"
         << mate[static_cast<std::size_t>(m)];
      r.error = os.str();
      return r;
    }
    const auto ns = g.neighbors(v);
    bool found = false;
    for (const vid n : ns)
      if (n == m) {
        found = true;
        break;
      }
    if (!found) {
      std::ostringstream os;
      os << "matched pair (" << v << "," << m << ") is not an edge";
      r.error = os.str();
      return r;
    }
  }
  r.valid = true;

  r.maximal = true;
  for (vid v = 0; v < g.num_vertices() && r.maximal; ++v) {
    if (mate[static_cast<std::size_t>(v)] != kUnmatched) continue;
    for (const vid n : g.neighbors(v)) {
      if (mate[static_cast<std::size_t>(n)] == kUnmatched) {
        std::ostringstream os;
        os << "not maximal: edge (" << v << "," << n
           << ") has both endpoints unmatched";
        r.error = os.str();
        r.maximal = false;
        break;
      }
    }
  }
  r.weight = matching_weight(g, mate);
  return r;
}

bool same_matching(const std::vector<vid>& a, const std::vector<vid>& b) {
  return a == b;
}

}  // namespace aspen::apps::matching
