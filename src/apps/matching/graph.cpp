#include "apps/matching/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/runtime.hpp"

namespace aspen::apps::matching {

csr_graph csr_graph::from_edges(vid nv, std::vector<edge> edges) {
  // Normalize to u < v, drop self-loops, dedup unordered pairs.
  for (auto& e : edges) {
    if (e.u > e.v) std::swap(e.u, e.v);
    if (e.u < 0 || e.v >= nv)
      throw std::invalid_argument("csr_graph: endpoint out of range");
  }
  std::erase_if(edges, [](const edge& e) { return e.u == e.v; });
  std::sort(edges.begin(), edges.end(), [](const edge& a, const edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const edge& a, const edge& b) {
                            return a.u == b.u && a.v == b.v;
                          }),
              edges.end());

  csr_graph g;
  g.nv_ = nv;
  std::vector<std::size_t> deg(static_cast<std::size_t>(nv), 0);
  for (const auto& e : edges) {
    ++deg[static_cast<std::size_t>(e.u)];
    ++deg[static_cast<std::size_t>(e.v)];
  }
  g.offs_.assign(static_cast<std::size_t>(nv) + 1, 0);
  for (vid v = 0; v < nv; ++v)
    g.offs_[static_cast<std::size_t>(v) + 1] =
        g.offs_[static_cast<std::size_t>(v)] + deg[static_cast<std::size_t>(v)];
  g.nbr_.resize(g.offs_.back());
  g.w_.resize(g.offs_.back());
  std::vector<std::size_t> cursor(g.offs_.begin(), g.offs_.end() - 1);
  for (const auto& e : edges) {
    g.nbr_[cursor[static_cast<std::size_t>(e.u)]] = e.v;
    g.w_[cursor[static_cast<std::size_t>(e.u)]++] = e.w;
    g.nbr_[cursor[static_cast<std::size_t>(e.v)]] = e.u;
    g.w_[cursor[static_cast<std::size_t>(e.v)]++] = e.w;
  }

  // Sort each adjacency heaviest-first with deterministic tie-breaking.
  for (vid v = 0; v < nv; ++v) {
    const std::size_t b = g.offs_[static_cast<std::size_t>(v)];
    const std::size_t e = g.offs_[static_cast<std::size_t>(v) + 1];
    std::vector<std::size_t> idx(e - b);
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = b + i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t c) {
      return heavier(g.w_[a], g.nbr_[a], g.w_[c], g.nbr_[c]);
    });
    std::vector<vid> tn(idx.size());
    std::vector<double> tw(idx.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      tn[i] = g.nbr_[idx[i]];
      tw[i] = g.w_[idx[i]];
    }
    std::copy(tn.begin(), tn.end(), g.nbr_.begin() + static_cast<std::ptrdiff_t>(b));
    std::copy(tw.begin(), tw.end(), g.w_.begin() + static_cast<std::ptrdiff_t>(b));
  }
  return g;
}

std::vector<edge> csr_graph::edge_list() const {
  std::vector<edge> out;
  out.reserve(num_edges());
  for (vid v = 0; v < nv_; ++v) {
    const auto ns = neighbors(v);
    const auto ws = weights(v);
    for (std::size_t i = 0; i < ns.size(); ++i)
      if (v < ns[i]) out.push_back({v, ns[i], ws[i]});
  }
  return out;
}

dist_graph dist_graph::build(const csr_graph& g) {
  dist_graph d;
  d.nv_ = g.num_vertices();
  const auto nranks = static_cast<vid>(rank_n());
  d.block_ = (d.nv_ + nranks - 1) / nranks;
  if (d.block_ == 0) d.block_ = 1;
  const auto me = static_cast<vid>(rank_me());
  d.lo_ = std::min(me * d.block_, d.nv_);
  d.hi_ = std::min(d.lo_ + d.block_, d.nv_);

  const vid owned = d.hi_ - d.lo_;
  d.offs_.assign(static_cast<std::size_t>(owned) + 1, 0);
  for (vid v = d.lo_; v < d.hi_; ++v)
    d.offs_[static_cast<std::size_t>(v - d.lo_) + 1] =
        d.offs_[static_cast<std::size_t>(v - d.lo_)] + g.degree(v);
  d.nbr_.resize(d.offs_.back());
  std::size_t pos = 0;
  for (vid v = d.lo_; v < d.hi_; ++v) {
    const auto ns = g.neighbors(v);
    for (const vid n : ns) {
      if (d.owner_of(n) != static_cast<int>(me)) ++d.cross_entries_;
      d.nbr_[pos++] = n;
    }
  }
  return d;
}

}  // namespace aspen::apps::matching
