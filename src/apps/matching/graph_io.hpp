// Graph file I/O.
//
// The paper's §IV-C methodology: "We modified the code to save the graph to
// a file and used the same graph across all runs." This module provides
// that: a compact binary format for weighted undirected graphs, so a
// generated input can be frozen once and reloaded identically for every
// library version and rank count.
#pragma once

#include <string>

#include "apps/matching/graph.hpp"

namespace aspen::apps::matching {

/// Magic/version header of the .aspengraph format.
inline constexpr char kGraphMagic[8] = {'A', 'S', 'P', 'G',
                                        'R', 'F', '0', '1'};

/// Write `g` to `path` (binary: header, vertex count, edge count, then
/// (u, v, w) triples with u < v). Throws std::runtime_error on I/O failure.
void save_graph(const csr_graph& g, const std::string& path);

/// Load a graph previously written by save_graph. Throws
/// std::runtime_error on I/O failure or format mismatch.
[[nodiscard]] csr_graph load_graph(const std::string& path);

}  // namespace aspen::apps::matching
