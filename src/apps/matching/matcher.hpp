// Half-approximate maximum-weight matching (paper §IV-C).
//
// Sequential reference: the classic greedy algorithm (repeatedly match the
// globally heaviest remaining edge), which is a ½-approximation. For graphs
// with distinct edge weights the locally-dominant matching computed by the
// distributed algorithm is *identical* to the greedy one — which is the
// correctness oracle the tests exploit.
//
// Distributed algorithm: pointer-based locally-dominant matching (after
// Manne & Bisseling, as used by the ExaGraph application). Each rank owns a
// contiguous vertex block and two shared arrays:
//   candidate[v] — the heaviest still-eligible neighbor v proposes to;
//   matched[v]   — v's mate (or kUnmatched / kExhausted).
// Rounds alternate (a) advancing candidates past dead neighbors and (b)
// detecting mutual proposals. Targets owned by the *same* rank are accessed
// directly (the application's manual same-process optimization); targets on
// co-located ranks use ASPEN RMA — the accesses whose notification overhead
// the paper's Fig. 8 measures.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/matching/graph.hpp"
#include "core/aspen.hpp"

namespace aspen::apps::matching {

/// Greedy ½-approximation; returns mate[v] (kUnmatched if unmatched).
[[nodiscard]] std::vector<vid> solve_sequential(const csr_graph& g);

/// Total weight of a matching given as a mate array.
[[nodiscard]] double matching_weight(const csr_graph& g,
                                     const std::vector<vid>& mate);

struct solve_stats {
  double seconds = 0.0;       // solve step only, max across ranks
  int rounds = 0;
  std::uint64_t rma_gets = 0;      // co-located reads issued by this rank
  std::uint64_t direct_reads = 0;  // same-process reads by this rank
};

/// Distributed solve (collective). Returns the mate array for the caller's
/// owned block; `stats` describes the caller's rank except `seconds`
/// (global max).
[[nodiscard]] std::vector<vid> solve_distributed(const dist_graph& g,
                                                 solve_stats& stats);

/// Convenience: gather the distributed result into a full mate array
/// (collective; identical on all ranks).
[[nodiscard]] std::vector<vid> gather_mates(const dist_graph& g,
                                            const std::vector<vid>& local);

}  // namespace aspen::apps::matching
