#include "apps/matching/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace aspen::apps::matching {

double edge_weight(vid u, vid v, std::uint64_t seed) noexcept {
  if (u > v) std::swap(u, v);
  splitmix64 rng(seed ^ (static_cast<std::uint64_t>(u) * 0x9E3779B97F4A7C15ULL) ^
                 (static_cast<std::uint64_t>(v) + 0xD1B54A32D192ED03ULL));
  (void)rng.next();
  return rng.next_unit();
}

csr_graph gen_channel(vid nx, vid ny, vid nz, std::uint64_t seed) {
  const vid n = nx * ny * nz;
  auto id = [&](vid x, vid y, vid z) { return (z * ny + y) * nx + x; };
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(3 * n));
  for (vid z = 0; z < nz; ++z) {
    for (vid y = 0; y < ny; ++y) {
      for (vid x = 0; x < nx; ++x) {
        const vid u = id(x, y, z);
        if (x + 1 < nx)
          edges.push_back({u, id(x + 1, y, z), edge_weight(u, id(x + 1, y, z), seed)});
        if (y + 1 < ny)
          edges.push_back({u, id(x, y + 1, z), edge_weight(u, id(x, y + 1, z), seed)});
        if (z + 1 < nz)
          edges.push_back({u, id(x, y, z + 1), edge_weight(u, id(x, y, z + 1), seed)});
      }
    }
  }
  return csr_graph::from_edges(n, std::move(edges));
}

double rgg_radius_for_degree(vid n, double deg) noexcept {
  // E[deg] = n * pi * r^2 for points in the unit square (ignoring borders).
  return std::sqrt(deg / (std::numbers::pi * static_cast<double>(n)));
}

namespace {

/// Points bucketed into a grid of cells of side >= radius; vertex ids are
/// assigned in row-major cell order so that contiguous id blocks are
/// spatially coherent (mirroring how mesh-like SuiteSparse inputs are
/// ordered).
struct point_set {
  std::vector<double> x, y;
  std::vector<std::size_t> cell_offs;  // CSR over cells -> point ids
  vid cells_per_side;
  double cell_size;

  point_set(vid n, double radius, std::uint64_t seed) {
    cells_per_side =
        std::max<vid>(1, static_cast<vid>(std::floor(1.0 / radius)));
    cell_size = 1.0 / static_cast<double>(cells_per_side);
    const auto ncells =
        static_cast<std::size_t>(cells_per_side * cells_per_side);
    splitmix64 rng(seed);
    std::vector<double> rx(static_cast<std::size_t>(n)),
        ry(static_cast<std::size_t>(n));
    std::vector<std::size_t> cell_of(static_cast<std::size_t>(n));
    std::vector<std::size_t> count(ncells, 0);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      rx[i] = rng.next_unit();
      ry[i] = rng.next_unit();
      const auto cx = std::min<vid>(cells_per_side - 1,
                                    static_cast<vid>(rx[i] / cell_size));
      const auto cy = std::min<vid>(cells_per_side - 1,
                                    static_cast<vid>(ry[i] / cell_size));
      cell_of[i] = static_cast<std::size_t>(cy * cells_per_side + cx);
      ++count[cell_of[i]];
    }
    cell_offs.assign(ncells + 1, 0);
    for (std::size_t c = 0; c < ncells; ++c)
      cell_offs[c + 1] = cell_offs[c] + count[c];
    // Reorder points by cell: new id = position in cell-sorted order.
    x.resize(static_cast<std::size_t>(n));
    y.resize(static_cast<std::size_t>(n));
    std::vector<std::size_t> cursor(cell_offs.begin(), cell_offs.end() - 1);
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      const std::size_t nid = cursor[cell_of[i]]++;
      x[nid] = rx[i];
      y[nid] = ry[i];
    }
  }

  [[nodiscard]] std::vector<edge> edges_within(double radius,
                                               std::uint64_t wseed) const {
    const double r2 = radius * radius;
    std::vector<edge> edges;
    const vid cps = cells_per_side;
    for (vid cy = 0; cy < cps; ++cy) {
      for (vid cx = 0; cx < cps; ++cx) {
        const auto c = static_cast<std::size_t>(cy * cps + cx);
        for (std::size_t i = cell_offs[c]; i < cell_offs[c + 1]; ++i) {
          // Same cell + the 4 forward neighbor cells (each pair once).
          for (std::size_t j = i + 1; j < cell_offs[c + 1]; ++j)
            try_edge(edges, i, j, r2, wseed);
          const vid dxs[4] = {1, -1, 0, 1};
          const vid dys[4] = {0, 1, 1, 1};
          for (int k = 0; k < 4; ++k) {
            const vid nx = cx + dxs[k], ny = cy + dys[k];
            if (nx < 0 || nx >= cps || ny >= cps) continue;
            const auto nc = static_cast<std::size_t>(ny * cps + nx);
            for (std::size_t j = cell_offs[nc]; j < cell_offs[nc + 1]; ++j)
              try_edge(edges, i, j, r2, wseed);
          }
        }
      }
    }
    return edges;
  }

 private:
  void try_edge(std::vector<edge>& edges, std::size_t i, std::size_t j,
                double r2, std::uint64_t wseed) const {
    const double dx = x[i] - x[j], dy = y[i] - y[j];
    if (dx * dx + dy * dy <= r2) {
      const auto u = static_cast<vid>(i), v = static_cast<vid>(j);
      edges.push_back({u, v, edge_weight(u, v, wseed)});
    }
  }
};

}  // namespace

csr_graph gen_rgg(vid n, double radius, std::uint64_t seed) {
  point_set ps(n, radius, seed);
  return csr_graph::from_edges(n, ps.edges_within(radius, seed ^ 0xABCD));
}

csr_graph gen_powerlaw(vid n, int m, std::uint64_t seed) {
  splitmix64 rng(seed);
  std::vector<edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  // Target list doubles as the degree-biased sampling pool (each endpoint
  // appears once per incident edge — classic BA construction).
  std::vector<vid> pool;
  pool.reserve(2 * static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  const vid seed_vertices = std::max<vid>(2, m + 1);
  for (vid v = 1; v < seed_vertices && v < n; ++v) {
    edges.push_back({v - 1, v, edge_weight(v - 1, v, seed)});
    pool.push_back(v - 1);
    pool.push_back(v);
  }
  for (vid v = seed_vertices; v < n; ++v) {
    for (int k = 0; k < m; ++k) {
      const vid t = pool[static_cast<std::size_t>(
          rng.next_below(pool.size()))];
      if (t == v) continue;
      edges.push_back({v, t, edge_weight(v, t, seed)});
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return csr_graph::from_edges(n, std::move(edges));
}

csr_graph gen_paper_random(vid n, int pct_long, std::uint64_t seed) {
  const double radius = rgg_radius_for_degree(n, 10.0);
  point_set ps(n, radius, seed);
  std::vector<edge> edges = ps.edges_within(radius, seed ^ 0xABCD);
  // "For each 100 such edges, the graph contains `pct_long` additional
  // edges between random vertices that are not close together."
  const auto nlong = edges.size() * static_cast<std::size_t>(pct_long) / 100;
  splitmix64 rng(seed ^ 0xF00D);
  const double r2 = radius * radius;
  std::size_t added = 0;
  while (added < nlong) {
    const auto u = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vid>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    const double dx = ps.x[static_cast<std::size_t>(u)] -
                      ps.x[static_cast<std::size_t>(v)];
    const double dy = ps.y[static_cast<std::size_t>(u)] -
                      ps.y[static_cast<std::size_t>(v)];
    if (dx * dx + dy * dy <= r2) continue;  // must not be close together
    edges.push_back({u, v, edge_weight(u, v, seed)});
    ++added;
  }
  return csr_graph::from_edges(n, std::move(edges));
}

csr_graph relabel_fraction(const csr_graph& g, double fraction,
                           std::uint64_t seed) {
  const vid n = g.num_vertices();
  const auto k = static_cast<std::size_t>(fraction * static_cast<double>(n));
  std::vector<vid> perm(static_cast<std::size_t>(n));
  for (vid v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  if (k >= 2) {
    // Choose k distinct vertices (Fisher-Yates prefix of a shuffled id
    // array), then rotate their labels by one.
    splitmix64 rng(seed);
    std::vector<vid> ids(static_cast<std::size_t>(n));
    for (vid v = 0; v < n; ++v) ids[static_cast<std::size_t>(v)] = v;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(n) - i));
      std::swap(ids[i], ids[j]);
    }
    for (std::size_t i = 0; i + 1 < k; ++i)
      perm[static_cast<std::size_t>(ids[i])] = ids[i + 1];
    perm[static_cast<std::size_t>(ids[k - 1])] = ids[0];
  }
  std::vector<edge> edges = g.edge_list();
  for (auto& e : edges) {
    e.u = perm[static_cast<std::size_t>(e.u)];
    e.v = perm[static_cast<std::size_t>(e.v)];
  }
  return csr_graph::from_edges(n, std::move(edges));
}

std::vector<named_input> fig8_inputs(double scale) {
  // Quick defaults sized so the full Fig. 8 sweep runs in seconds; the
  // paper's graphs are reached around scale ~ 50-100.
  const auto sv = [&](double base) {
    return std::max<vid>(1024, static_cast<vid>(base * scale));
  };
  std::vector<named_input> out;
  {
    // channel: 3-D lattice, ~48k vertices at scale 1.
    const auto side = std::max<vid>(
        8, static_cast<vid>(std::cbrt(static_cast<double>(sv(48'000)))));
    out.push_back({"channel", gen_channel(side, side, side)});
  }
  // The relabel fractions place the inputs on the paper's locality
  // spectrum: channel (fully local) < venturi < random < delaunay <
  // youtube (naturally non-local), matching the ordering of Fig. 8's
  // observed speedups (0%, 2%, 5%, 6%, 11%).
  out.push_back({"delaunay",
                 relabel_fraction(gen_rgg(sv(33'000),
                                          rgg_radius_for_degree(sv(33'000), 6.0),
                                          0xDE1A),
                                  0.12, 0xDE1A)});
  out.push_back({"venturi",
                 relabel_fraction(gen_rgg(sv(64'000),
                                          rgg_radius_for_degree(sv(64'000), 4.0),
                                          0x0E27),
                                  0.04, 0x0E27)});
  out.push_back({"youtube", gen_powerlaw(sv(18'000), 3, 0x707B)});
  out.push_back({"random",
                 relabel_fraction(gen_paper_random(sv(32'000), 15, 0x4A2D),
                                  0.08, 0x4A2D)});
  return out;
}

}  // namespace aspen::apps::matching
