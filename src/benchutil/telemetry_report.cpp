#include "benchutil/telemetry_report.hpp"

#include <fstream>
#include <functional>
#include <ostream>
#include <sstream>

#include "benchutil/table.hpp"
#include "core/telemetry_live.hpp"

namespace aspen::bench {

void print_telemetry_summary(std::ostream& os,
                             const telemetry::snapshot& snap) {
  if (!telemetry::compiled_in()) {
    os << "[telemetry] compiled out (configure with -DASPEN_TELEMETRY=ON)\n";
    return;
  }

  os << "telemetry counters:\n";
  table t({"counter", "count"});
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    const auto c = static_cast<telemetry::counter>(i);
    if (snap.get(c) != 0)
      t.add_row({telemetry::to_string(c), std::to_string(snap.get(c))});
  }
  t.print(os);

  const std::uint64_t total = snap.completions_issued();
  std::ostringstream ratio;
  ratio.precision(3);
  ratio << std::fixed << snap.eager_bypass_ratio();
  table d({"completion disposition", "value"});
  d.add_row({"issued", std::to_string(total)});
  d.add_row({"eager_bypass_ratio", ratio.str()});
  d.add_row({"pq_high_water", std::to_string(snap.pq_high_water)});
  d.add_row({"pq_reserve_growths", std::to_string(snap.pq_reserve_growths)});
  d.add_row({"pq_total_fired", std::to_string(snap.pq_total_fired)});
  d.print(os);

  bool any_lat = false;
  for (std::size_t i = 0; i < telemetry::kLatStreamCount; ++i)
    any_lat = any_lat || snap.lat[i].total() != 0;
  if (any_lat) {
    os << "completion latency (ns):\n";
    table l({"stream", "count", "p50", "p90", "p99", "max"});
    for (std::size_t i = 0; i < telemetry::kLatStreamCount; ++i) {
      const telemetry::lat_hist& h = snap.lat[i];
      if (h.total() == 0) continue;
      l.add_row({telemetry::to_string(static_cast<telemetry::lat_stream>(i)),
                 std::to_string(h.total()),
                 std::to_string(h.percentile_ns(50.0)),
                 std::to_string(h.percentile_ns(90.0)),
                 std::to_string(h.percentile_ns(99.0)),
                 std::to_string(h.max_ns)});
    }
    l.print(os);
  }
}

telemetry::snapshot stable_aggregate() {
  // telemetry::aggregate() folds per-thread atomic cells one relaxed load
  // at a time, so a snapshot taken while worker threads are injecting can
  // mix "before" and "after" values of logically-coupled counters (a torn
  // read: cx_eager_taken from one instant, completions from another).
  // Reading until two consecutive aggregates agree yields a snapshot that
  // was stable across a full fold — the same discipline the live plane's
  // final flush gets from region quiescence. Bounded: under sustained
  // mutation the last (possibly torn) read still returns rather than
  // spinning forever.
  telemetry::snapshot prev = telemetry::aggregate();
  for (int spin = 0; spin < 1000; ++spin) {
    telemetry::snapshot cur = telemetry::aggregate();
    if (cur == prev) return cur;
    prev = cur;
  }
  return prev;
}

std::string disposition_latency_json(const telemetry::snapshot& snap) {
  std::ostringstream os;
  os << '{';
  const telemetry::disposition dispositions[] = {
      telemetry::disposition::eager, telemetry::disposition::deferred};
  for (const telemetry::disposition d : dispositions) {
    const telemetry::lat_hist h = snap.lat_by_disposition(d);
    os << (d == telemetry::disposition::eager ? "\"" : ", \"")
       << telemetry::to_string(d) << "\": {\"count\": " << h.total()
       << ", \"p50_ns\": " << h.percentile_ns(50.0)
       << ", \"p99_ns\": " << h.percentile_ns(99.0)
       << ", \"max_ns\": " << h.max_ns << "}";
  }
  os << '}';
  return os.str();
}

bool write_telemetry_sidecar(const std::string& path,
                             const std::string& bench_name,
                             const telemetry::snapshot& snap) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"bench\": \"" << bench_name << "\",\n  \"telemetry\": "
    << snap.to_json() << ",\n  \"latency_by_disposition\": "
    << disposition_latency_json(snap) << "\n}\n";
  return static_cast<bool>(f);
}

namespace {

/// Parse the unsigned integer that follows the first occurrence of `key`
/// (a quoted JSON key) after position `from`. Returns false if absent.
bool parse_u64_after(const std::string& s, const char* key, std::size_t from,
                     std::uint64_t* out) {
  std::size_t k = s.find(key, from);
  if (k == std::string::npos) return false;
  k = s.find(':', k);
  if (k == std::string::npos) return false;
  ++k;
  while (k < s.size() && (s[k] == ' ' || s[k] == '\n')) ++k;
  if (k >= s.size() || s[k] < '0' || s[k] > '9') return false;
  std::uint64_t v = 0;
  for (; k < s.size() && s[k] >= '0' && s[k] <= '9'; ++k)
    v = v * 10 + static_cast<std::uint64_t>(s[k] - '0');
  *out = v;
  return true;
}

/// Counter index for a sidecar name, or kCounterCount if unknown.
std::size_t counter_index(const std::string& name) {
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i)
    if (name == telemetry::to_string(static_cast<telemetry::counter>(i)))
      return i;
  return telemetry::kCounterCount;
}

}  // namespace

std::string rank_sidecar_path(const std::string& base, int rank) {
  return base + ".rank" + std::to_string(rank) + ".telemetry.json";
}

bool read_telemetry_sidecar(const std::string& path, std::string* bench_name,
                            telemetry::snapshot* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string s = ss.str();

  const std::size_t bench_key = s.find("\"bench\"");
  if (bench_key == std::string::npos) return false;
  if (bench_name != nullptr) {
    std::size_t open = s.find('"', s.find(':', bench_key));
    if (open == std::string::npos) return false;
    std::size_t close = s.find('"', open + 1);
    if (close == std::string::npos) return false;
    *bench_name = s.substr(open + 1, close - open - 1);
  }
  if (out == nullptr) return true;

  telemetry::snapshot snap{};
  const std::size_t counters = s.find("\"counters\"");
  if (counters == std::string::npos) return false;
  // Walk the "name": value pairs of the counters object.
  std::size_t pos = s.find('{', counters);
  if (pos == std::string::npos) return false;
  const std::size_t counters_end = s.find('}', pos);
  while (pos < counters_end) {
    const std::size_t open = s.find('"', pos + 1);
    if (open == std::string::npos || open > counters_end) break;
    const std::size_t close = s.find('"', open + 1);
    if (close == std::string::npos || close > counters_end) break;
    const std::string name = s.substr(open + 1, close - open - 1);
    std::size_t p = s.find(':', close);
    if (p == std::string::npos || p > counters_end) break;
    ++p;
    while (p < counters_end && (s[p] == ' ' || s[p] == '\n')) ++p;
    std::uint64_t v = 0;
    for (; p < counters_end && s[p] >= '0' && s[p] <= '9'; ++p)
      v = v * 10 + static_cast<std::uint64_t>(s[p] - '0');
    const std::size_t idx = counter_index(name);
    if (idx < telemetry::kCounterCount) snap.counters[idx] = v;
    pos = s.find(',', close);
    if (pos == std::string::npos || pos > counters_end) break;
  }

  const std::size_t pq = s.find("\"progress_queue\"");
  if (pq != std::string::npos) {
    (void)parse_u64_after(s, "\"high_water\"", pq, &snap.pq_high_water);
    (void)parse_u64_after(s, "\"reserve_growths\"", pq,
                          &snap.pq_reserve_growths);
    (void)parse_u64_after(s, "\"total_fired\"", pq, &snap.pq_total_fired);
    (void)parse_u64_after(s, "\"lpc_mailbox_high_water\"", pq,
                          &snap.lpc_mailbox_high_water);
    std::size_t hist = s.find("\"fire_batch_hist_pow2\"", pq);
    if (hist != std::string::npos) {
      hist = s.find('[', hist);
      const std::size_t hist_end = s.find(']', hist);
      std::size_t p = hist + 1;
      for (std::size_t b = 0;
           b < telemetry::kPqBatchBuckets && p < hist_end; ++b) {
        while (p < hist_end && (s[p] == ' ' || s[p] == ',')) ++p;
        std::uint64_t v = 0;
        for (; p < hist_end && s[p] >= '0' && s[p] <= '9'; ++p)
          v = v * 10 + static_cast<std::uint64_t>(s[p] - '0');
        snap.pq_fire_hist[b] = v;
      }
    }
  }
  // Latency histograms: per stream, the mergeable fields only (buckets and
  // max_ns; count/percentiles in the sidecar are derived). Optional for
  // back-compat with sidecars written before the latency plane existed.
  const std::size_t latj = s.find("\"latency\"");
  if (latj != std::string::npos) {
    for (std::size_t st = 0; st < telemetry::kLatStreamCount; ++st) {
      const std::string key =
          std::string("\"") +
          telemetry::to_string(static_cast<telemetry::lat_stream>(st)) + "\"";
      const std::size_t k = s.find(key, latj);
      if (k == std::string::npos) continue;
      const std::size_t obj_end = s.find('}', k);
      const std::size_t open = s.find('[', k);
      if (open == std::string::npos || obj_end == std::string::npos ||
          open > obj_end)
        continue;
      const std::size_t close = s.find(']', open);
      std::size_t p = open + 1;
      for (std::size_t b = 0;
           b < telemetry::kLatBuckets && p < close; ++b) {
        while (p < close && (s[p] == ' ' || s[p] == ',')) ++p;
        std::uint64_t v = 0;
        for (; p < close && s[p] >= '0' && s[p] <= '9'; ++p)
          v = v * 10 + static_cast<std::uint64_t>(s[p] - '0');
        snap.lat[st].buckets[b] = v;
      }
      (void)parse_u64_after(s, "\"max_ns\"", close, &snap.lat[st].max_ns);
    }
  }
  *out = snap;
  return true;
}

telemetry::snapshot merge_snapshots(
    const std::vector<telemetry::snapshot>& parts) {
  // Delegate to the runtime's single merge definition: the live collector
  // uses the same function per update frame, which is what makes rank 0's
  // in-memory aggregate bit-identical to a post-hoc sidecar merge.
  telemetry::snapshot m{};
  for (const telemetry::snapshot& p : parts) telemetry::merge_into(m, p);
  return m;
}

int merge_rank_sidecars(const std::string& base, int nranks,
                        telemetry::snapshot* out) {
  std::vector<telemetry::snapshot> parts;
  for (int r = 0; r < nranks; ++r) {
    telemetry::snapshot s{};
    if (read_telemetry_sidecar(rank_sidecar_path(base, r), nullptr, &s))
      parts.push_back(s);
  }
  if (out != nullptr) *out = merge_snapshots(parts);
  return static_cast<int>(parts.size());
}

void print_live_telemetry_report(std::ostream& os) {
  if (!telemetry::live::enabled()) {
    os << "[telemetry] live aggregation disabled "
          "(set ASPEN_TELEMETRY_INTERVAL_MS)\n";
    return;
  }
  const int nranks = telemetry::live::collector_ranks();
  if (nranks == 0) {
    os << "[telemetry] no live collector on this rank "
          "(only rank 0 aggregates)\n";
    return;
  }
  os << "live job-wide telemetry (" << nranks << " ranks, no sidecars):\n";
  print_telemetry_summary(os, telemetry::live::job_snapshot());
  table t({"rank", "updates", "sendq_bytes", "sendq_high_water",
           "staged_msgs", "lpc_mailbox"});
  for (int r = 0; r < nranks; ++r) {
    const telemetry::live::gauges g = telemetry::live::rank_gauges(r);
    t.add_row({std::to_string(r),
               std::to_string(telemetry::live::rank_updates(r)),
               std::to_string(g.sendq_bytes),
               std::to_string(g.sendq_high_water),
               std::to_string(g.staged_msgs),
               std::to_string(g.lpc_mailbox_depth)});
  }
  t.print(os);
}

std::string rank_trace_path(const std::string& base, int rank) {
  return base + ".rank" + std::to_string(rank) + ".trace.json";
}

namespace {

/// Shared stitcher for the two per-rank Trace Event families (telemetry
/// span traces and otrace flight-recorder exports): slice each rank file's
/// traceEvents array and join them into one Perfetto-loadable object.
int merge_rank_event_files(
    const std::string& base, int nranks, const std::string& out_path,
    const std::function<std::string(const std::string&, int)>& path_of) {
  std::ofstream out(out_path);
  if (!out) return -1;
  out << "{\"traceEvents\":[";
  int merged = 0;
  bool first = true;
  for (int r = 0; r < nranks; ++r) {
    std::ifstream f(path_of(base, r));
    if (!f) continue;
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string s = ss.str();
    // Slice the events array out of {"traceEvents":[...],"displayTimeUnit"
    // ...}. Event names/categories are fixed identifiers, so the closing
    // "]," before displayTimeUnit is unambiguous.
    const std::size_t open = s.find("\"traceEvents\":[");
    const std::size_t close = s.rfind("],\"displayTimeUnit\"");
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
      continue;
    const std::size_t begin = open + std::string("\"traceEvents\":[").size();
    const std::string events = s.substr(begin, close - begin);
    if (!events.empty()) {
      if (!first) out << ",\n";
      out << events;
      first = false;
    }
    ++merged;
  }
  out << "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"ranks_merged\":"
      << merged << "}}";
  return out ? merged : -1;
}

}  // namespace

int merge_rank_traces(const std::string& base, int nranks,
                      const std::string& out_path) {
  return merge_rank_event_files(base, nranks, out_path, &rank_trace_path);
}

std::string rank_otrace_path(const std::string& base, int rank) {
  // Must match otrace::dump_path — the endpoint's region-exit export and
  // the crash/SIGUSR2 dumps both use that scheme.
  return base + ".rank" + std::to_string(rank) + ".otrace.json";
}

int merge_rank_otraces(const std::string& base, int nranks,
                       const std::string& out_path) {
  return merge_rank_event_files(base, nranks, out_path, &rank_otrace_path);
}

}  // namespace aspen::bench
