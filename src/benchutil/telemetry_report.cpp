#include "benchutil/telemetry_report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "benchutil/table.hpp"

namespace aspen::bench {

void print_telemetry_summary(std::ostream& os,
                             const telemetry::snapshot& snap) {
  if (!telemetry::compiled_in()) {
    os << "[telemetry] compiled out (configure with -DASPEN_TELEMETRY=ON)\n";
    return;
  }

  os << "telemetry counters:\n";
  table t({"counter", "count"});
  for (std::size_t i = 0; i < telemetry::kCounterCount; ++i) {
    const auto c = static_cast<telemetry::counter>(i);
    if (snap.get(c) != 0)
      t.add_row({telemetry::to_string(c), std::to_string(snap.get(c))});
  }
  t.print(os);

  const std::uint64_t total = snap.completions_issued();
  std::ostringstream ratio;
  ratio.precision(3);
  ratio << std::fixed << snap.eager_bypass_ratio();
  table d({"completion disposition", "value"});
  d.add_row({"issued", std::to_string(total)});
  d.add_row({"eager_bypass_ratio", ratio.str()});
  d.add_row({"pq_high_water", std::to_string(snap.pq_high_water)});
  d.add_row({"pq_reserve_growths", std::to_string(snap.pq_reserve_growths)});
  d.add_row({"pq_total_fired", std::to_string(snap.pq_total_fired)});
  d.print(os);
}

bool write_telemetry_sidecar(const std::string& path,
                             const std::string& bench_name,
                             const telemetry::snapshot& snap) {
  std::ofstream f(path);
  if (!f) return false;
  f << "{\n  \"bench\": \"" << bench_name << "\",\n  \"telemetry\": "
    << snap.to_json() << "\n}\n";
  return static_cast<bool>(f);
}

}  // namespace aspen::bench
