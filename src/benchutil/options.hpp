// Environment-driven sizing for the figure-reproduction benchmarks, so the
// default `for b in build/bench/*; do $b; done` sweep finishes quickly while
// paper-scale runs remain one environment variable away.
//
//   ASPEN_BENCH_OPS     per-operation microbenchmark iteration count
//                       (paper: 10'000'000; default here: 1'000'000)
//   ASPEN_BENCH_RANKS   rank count for GUPS/matching (paper: 16;
//                       default: min(16, hardware_concurrency))
//   ASPEN_BENCH_SAMPLES measurement repetitions   (paper: 20; default: 5)
//   ASPEN_BENCH_KEEP    samples kept (best)       (paper: 10; default: 3)
//   ASPEN_BENCH_SCALE   workload scale multiplier for GUPS/matching
//                       (default 1; paper-comparable ~8-16)
//   ASPEN_BENCH_PERTURB non-zero adds a perturbed-conduit pass to the
//                       off-node benchmark (default 0)
//   ASPEN_BENCH_THREADS injector threads per rank for the multithreaded
//                       phases (run_workers; default 1 = classic
//                       single-threaded injection). Benchmarks that take a
//                       --threads N argument let it override this.
//
// Perturbed-conduit runs additionally honor the ASPEN_PERTURB_* family
// (read by gex::perturb::apply_env unless a program opts out via
// perturb_config::honor_env = false; see docs/PERTURB.md):
//   ASPEN_PERTURB_MODE             forced-sync | forced-async | delay-reorder
//                                  (preset applied first; knobs below win)
//   ASPEN_PERTURB_SEED             base seed, decimal or 0x-hex (replayable)
//   ASPEN_PERTURB_DELAY_PCT        % of messages assigned a delivery hold
//   ASPEN_PERTURB_MAX_HOLD         max polls a held message waits (>= 1)
//   ASPEN_PERTURB_REORDER          non-zero randomizes cross-source delivery
//   ASPEN_PERTURB_FORCED_ASYNC_PCT % of shareable-target RMA/atomics diverted
//                                  down the AM path
//   ASPEN_PERTURB_BACKPRESSURE     non-zero bounds inboxes at
//                                  config::am_inbox_capacity
//   ASPEN_PERTURB_SWEEP_SEEDS      seeds per mode in test_perturb_sweep
//                                  (test harness only; default 4)
//
// conduit::tcp (real-process) runs honor the ASPEN_NET_* family, read by
// net::apply_env unless net_config::honor_env is cleared (see docs/NET.md).
// ASPEN_NET_RANK / ASPEN_NET_NRANKS / ASPEN_NET_RDZV_PORT are reserved:
// they are the bootstrap contract set by `aspen-run` for its children and
// must never be set by hand.
//   ASPEN_NET_EAGER_MAX    largest AM payload sent inline in one eager
//                          frame; larger payloads use the RTS/CTS/DATA
//                          rendezvous (default 8 KiB; decimal or 0x-hex)
//   ASPEN_NET_MAX_FRAME    hard per-frame payload ceiling; a peer
//                          announcing more is a protocol violation
//                          (default 64 MiB)
//   ASPEN_NET_SEGMENT_BASE fixed virtual address where every rank process
//                          maps the segment arena (default 0x2a5e00000000)
//   ASPEN_BENCH_TCP        offnode_branch only: zero skips the aspen-run
//                          real-process leg (default 1)
//   ASPEN_RUN              offnode_branch only: path to the aspen-run
//                          launcher (default: ../src/aspen-run relative to
//                          the benchmark binary)
//
// conduit::shm (same-host shared-memory fabric; see docs/SHM.md). The
// ASPEN_SHM_* family is read by the same net::apply_env pass:
//   ASPEN_SHM              zero disables the fabric entirely: conduit::shm
//                          jobs run pure-tcp with identical results — the
//                          degraded/fallback mode (default 1)
//   ASPEN_SHM_EAGER_MAX    largest AM payload carried inline in a msg-ring
//                          record; 0/unset inherits ASPEN_NET_EAGER_MAX,
//                          clamped to a quarter of the msg ring
//   ASPEN_SHM_RING_BYTES   per-directed-pair msg ring capacity, rounded to
//                          a power of two in [4 KiB, 256 MiB]
//                          (default 1 MiB)
//   ASPEN_SHM_BULK_BYTES   per-directed-pair bulk ring capacity, same
//                          rounding; payloads up to half of it stage
//                          through the bulk ring, larger ones fall back to
//                          the socket rendezvous (default 8 MiB)
//   ASPEN_BENCH_SHM        offnode_branch / gups_rank_sweep only: non-zero
//                          adds a conduit::shm leg next to the tcp leg
//                          (default 1 in offnode_branch, 0 in the sweep)
//
// Wire aggregation fabric (aspen::agg; see docs/AGG.md). Read by the same
// net::apply_env pass at every region entry:
//   ASPEN_AGG              non-zero arms per-peer coalescing: queued eager
//                          frames pack into one bounded buffer per syscall
//                          (and one kShmBatch ring record on shm), flushed
//                          on the watermarks below (default 0 = off)
//   ASPEN_AGG_BYTES        byte watermark: flush once the open batch would
//                          exceed this many queued bytes; clamped so one
//                          maximal eager frame always fits (default 64 KiB)
//   ASPEN_AGG_FRAMES       frame-count watermark: flush after this many
//                          coalesced frames (default 128, min 1)
//   ASPEN_AGG_FLUSH_US     age watermark in microseconds — the wall-clock
//                          backstop behind the progress-tick watermark (a
//                          batch that gains no frame across a pump tick
//                          flushes immediately; one an injector thread is
//                          still filling waits at most this long)
//                          (default 100)
//   ASPEN_NET_SENDQ_MAX    non-zero bounds each peer's send queue at this
//                          many bytes: injectors whose target queue is over
//                          the bound park in bounded flush-and-retry spins
//                          (counted by net_sendq_parked) instead of growing
//                          the queue without limit (default 0 = unbounded)
//   ASPEN_BENCH_AGG        gups_rank_sweep / offnode_branch only: non-zero
//                          adds the aggregation-on legs (tcp ASPEN_AGG=0
//                          vs 1 MUPS + checksum identity in the sweep; the
//                          latency-parity re-run in offnode_branch)
//                          (default 0)
//
// io_uring data plane (aspen::uring; see docs/URING.md). Read by the same
// net::apply_env pass at every region entry:
//   ASPEN_NET_URING        non-zero selects the io_uring socket data plane
//                          for the endpoint mesh: batched SQE sends (one
//                          io_uring_enter per pump tick), multishot recv
//                          from a registered buffer ring, fixed-buffer
//                          rendezvous DATA sends, and idle parking inside
//                          io_uring_enter(GETEVENTS). Any setup failure
//                          (old kernel, seccomp) silently degrades to the
//                          portable poll(2) plane with identical wire
//                          semantics (default 0 = poll)
//   ASPEN_URING_SQ_DEPTH   submission-queue depth in entries; the CQ is
//                          sized 8x (default 256, clamped to [8, 4096])
//   ASPEN_URING_BUFRING_BYTES  total provided-buffer-ring memory feeding
//                          multishot recv, split into 32 KiB chunks and
//                          rounded to a power-of-two chunk count
//                          (default 2 MiB, clamped to [64 KiB, 64 MiB])
//   ASPEN_BENCH_URING      gups_rank_sweep / offnode_branch only: non-zero
//                          adds the uring-vs-poll legs (agg-on MUPS ratio
//                          plus checksum bit-identity in the sweep; the
//                          uring counter report in offnode_branch)
//                          (default 0)
//
// Live cross-process telemetry (see docs/TELEMETRY.md):
//   ASPEN_TELEMETRY_INTERVAL_MS  non-zero ranks push delta-encoded counter
//                          updates to rank 0 every this-many ms, plus one
//                          final flush at region exit; rank 0 then serves
//                          the job-wide aggregate with no sidecar files
//                          (unset/0 = off; clamped to 1 h)
//   ASPEN_TELEMETRY_TRACE  base path: auto-enables tracing and writes
//                          <base>.rank<r>.trace.json per rank at region
//                          exit (merge with bench::merge_rank_traces)
//   ASPEN_BENCH_SIDECARS   offnode_branch only: with live telemetry on,
//                          non-zero also writes the per-rank sidecars plus
//                          rank 0's <result>.live.json so the parent can
//                          diff the live aggregate against the sidecar
//                          merge (the CI cross-check; default 0)
//
// Stall watchdog and the aspen-top monitor (see docs/TELEMETRY.md):
//   ASPEN_WATCHDOG_MS      non-zero arms the stall watchdog: a rank whose
//                          oldest pending remote op, progress gap (with
//                          work pending), or send-queue drain exceeds this
//                          many ms dumps <base>.rank<R>.health.json once
//                          per stall episode; SIGUSR1 forces a dump
//                          (unset/0 = off)
//   ASPEN_WATCHDOG_REPORT  report base path <base> above (default "aspen")
//   ASPEN_TOP_INTERVAL_MS  aspen-top refresh interval when --interval is
//                          not given (default 500, clamped to 1 min)
//
// Operation tracing and the flight recorder (see docs/OTRACE.md):
//   ASPEN_TRACE_SAMPLE     "N" or "1/N": one injected op in N draws a
//                          job-unique trace id carried across the wire;
//                          every hop it touches lands in the flight
//                          recorder and the region-exit Perfetto export
//                          (unset/0 = off, the default; 1 = every op)
//   ASPEN_TRACE_RING_BYTES per-rank flight-recorder ring size in bytes,
//                          rounded down to a power-of-two slot count
//                          (default 1 MiB, clamped to [4 KiB, 1 GiB])
//   ASPEN_LOG              runtime diagnostic verbosity: error, warn,
//                          info (default), debug, or 0-3 — every line
//                          goes to stderr as "aspen[r<rank>] <level>: ..."
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace aspen::bench {

struct options {
  std::size_t micro_ops = 1'000'000;
  int ranks = 16;
  std::size_t samples = 5;
  std::size_t keep = 3;
  double scale = 1.0;
  /// Injector threads per rank (>= 1). Multithreaded phases spawn
  /// `threads - 1` workers via aspen::run_workers per rank.
  int threads = 1;

  /// Read the ASPEN_BENCH_* environment, clamping ranks to hardware.
  [[nodiscard]] static options from_env();

  /// One-line description for figure headers.
  [[nodiscard]] std::string describe() const;
};

/// Parse helpers (exposed for tests).
[[nodiscard]] std::size_t env_size_t(const char* name, std::size_t dflt);
[[nodiscard]] double env_double(const char* name, double dflt);

}  // namespace aspen::bench
