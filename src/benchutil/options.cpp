#include "benchutil/options.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <thread>

namespace aspen::bench {

std::size_t env_size_t(const char* name, std::size_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return dflt;
  return static_cast<std::size_t>(parsed);
}

double env_double(const char* name, double dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return dflt;
  return parsed;
}

options options::from_env() {
  options o;
  o.micro_ops = env_size_t("ASPEN_BENCH_OPS", o.micro_ops);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  o.ranks = static_cast<int>(env_size_t(
      "ASPEN_BENCH_RANKS",
      std::min<std::size_t>(16,
                            std::max<std::size_t>(2, static_cast<std::size_t>(hw)))));
  o.ranks = std::max(1, o.ranks);
  o.samples = env_size_t("ASPEN_BENCH_SAMPLES", o.samples);
  o.keep = std::min(env_size_t("ASPEN_BENCH_KEEP", o.keep), o.samples);
  o.scale = env_double("ASPEN_BENCH_SCALE", o.scale);
  o.threads = std::max(
      1, static_cast<int>(env_size_t("ASPEN_BENCH_THREADS",
                                     static_cast<std::size_t>(o.threads))));
  return o;
}

std::string options::describe() const {
  std::ostringstream os;
  os << "config: ranks=" << ranks << " micro_ops=" << micro_ops
     << " samples=" << samples << " keep=" << keep << " scale=" << scale
     << " threads=" << threads
     << "  (paper protocol: ranks=16 micro_ops=1e7 samples=20 keep=10; set "
        "ASPEN_BENCH_* to match)";
  return os.str();
}

}  // namespace aspen::bench
