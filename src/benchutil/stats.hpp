// The paper's measurement protocol (§IV): run `samples` repetitions of an
// experiment, keep the best `keep` (top-k by performance, i.e. smallest
// times), and report their average. Defaults match the paper: 20 samples,
// average of the best 10.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace aspen::bench {

struct sample_summary {
  double mean = 0.0;    // mean of the kept (best) samples
  double best = 0.0;    // single best sample
  double worst = 0.0;   // worst overall sample (diagnostic)
  double stddev = 0.0;  // stddev of the kept samples
  std::size_t kept = 0;
  std::size_t total = 0;
};

/// Summarize raw timing samples (seconds; smaller is better): average of
/// the `keep` smallest.
[[nodiscard]] sample_summary summarize_best(std::vector<double> samples,
                                            std::size_t keep);

/// Run `fn()` (returning elapsed seconds) `samples` times and summarize the
/// best `keep`. The paper's protocol is samples=20, keep=10 (60/10 for one
/// noisy configuration).
[[nodiscard]] sample_summary measure(const std::function<double()>& fn,
                                     std::size_t samples = 20,
                                     std::size_t keep = 10);

}  // namespace aspen::bench
