// Monotonic wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace aspen::bench {

class stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  stopwatch() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction/reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed nanoseconds since construction/reset.
  [[nodiscard]] std::uint64_t nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  clock::time_point start_;
};

/// Prevent the optimizer from discarding a computed value.
template <typename T>
inline void do_not_optimize(T const& value) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r,m"(value) : "memory");
#else
  volatile T sink = value;
  (void)sink;
#endif
}

}  // namespace aspen::bench
