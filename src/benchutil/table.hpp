// Console tables that mirror the layout of the paper's figures: one row per
// benchmark variant, one column per library version, plus derived speedup
// columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aspen::bench {

class table {
 public:
  explicit table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with an adaptive unit (ns/us/ms/s).
[[nodiscard]] std::string format_time(double seconds);

/// Format a dimensionless ratio like "1.85x".
[[nodiscard]] std::string format_speedup(double ratio);

/// Format a rate (ops/sec) with adaptive unit (K/M/G updates per second).
[[nodiscard]] std::string format_rate(double per_second);

/// Print a figure banner: id, caption, configuration line.
void print_figure_header(std::ostream& os, const std::string& figure_id,
                         const std::string& caption,
                         const std::string& configuration);

}  // namespace aspen::bench
