#include "benchutil/stats.hpp"

#include <algorithm>
#include <cmath>

namespace aspen::bench {

sample_summary summarize_best(std::vector<double> samples, std::size_t keep) {
  sample_summary s;
  s.total = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.worst = samples.back();
  s.best = samples.front();
  s.kept = std::min(keep, samples.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < s.kept; ++i) sum += samples[i];
  s.mean = sum / static_cast<double>(s.kept);
  double var = 0.0;
  for (std::size_t i = 0; i < s.kept; ++i) {
    const double d = samples[i] - s.mean;
    var += d * d;
  }
  s.stddev = s.kept > 1 ? std::sqrt(var / static_cast<double>(s.kept - 1))
                        : 0.0;
  return s;
}

sample_summary measure(const std::function<double()>& fn, std::size_t samples,
                       std::size_t keep) {
  std::vector<double> times;
  times.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) times.push_back(fn());
  return summarize_best(std::move(times), keep);
}

}  // namespace aspen::bench
