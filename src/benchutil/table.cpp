#include "benchutil/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace aspen::bench {

table::table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s.front())) != 0 ||
         s.front() == '-' || s.front() == '+' || s.front() == '.';
}
}  // namespace

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  rule();
  os << '|';
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
       << headers_[i] << " |";
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << ' ';
      if (looks_numeric(row[i]))
        os << std::right << std::setw(static_cast<int>(widths[i])) << row[i];
      else
        os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      os << " |";
    }
    os << '\n';
  }
  rule();
}

std::string format_time(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (seconds < 1e-6) {
    os << seconds * 1e9 << " ns";
  } else if (seconds < 1e-3) {
    os << seconds * 1e6 << " us";
  } else if (seconds < 1.0) {
    os << seconds * 1e3 << " ms";
  } else {
    os << std::setprecision(2) << seconds << " s";
  }
  return os.str();
}

std::string format_speedup(double ratio) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << ratio << "x";
  return os.str();
}

std::string format_rate(double per_second) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (per_second >= 1e9) {
    os << per_second / 1e9 << " G/s";
  } else if (per_second >= 1e6) {
    os << per_second / 1e6 << " M/s";
  } else if (per_second >= 1e3) {
    os << per_second / 1e3 << " K/s";
  } else {
    os << per_second << " /s";
  }
  return os.str();
}

void print_figure_header(std::ostream& os, const std::string& figure_id,
                         const std::string& caption,
                         const std::string& configuration) {
  os << '\n'
     << "=== " << figure_id << ": " << caption << " ===\n"
     << configuration << '\n';
}

}  // namespace aspen::bench
