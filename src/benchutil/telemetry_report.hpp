// Benchmark-side helpers for aspen::telemetry: a human-readable counter
// table and the JSON sidecar files the figure drivers emit next to their
// console output.
#pragma once

#include <iosfwd>
#include <string>

#include "core/telemetry.hpp"

namespace aspen::bench {

/// Print the non-zero counters, the completion-disposition breakdown and
/// the progress-queue stats as an aligned table. Prints a one-line notice
/// instead when the build has ASPEN_TELEMETRY off.
void print_telemetry_summary(std::ostream& os,
                             const telemetry::snapshot& snap);

/// Write `{"bench": <name>, "telemetry": <snapshot JSON>}` to `path`.
/// Returns false (without throwing) if the file cannot be opened.
bool write_telemetry_sidecar(const std::string& path,
                             const std::string& bench_name,
                             const telemetry::snapshot& snap);

}  // namespace aspen::bench
