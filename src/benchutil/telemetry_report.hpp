// Benchmark-side helpers for aspen::telemetry: a human-readable counter
// table and the JSON sidecar files the figure drivers emit next to their
// console output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/telemetry.hpp"

namespace aspen::bench {

/// Print the non-zero counters, the completion-disposition breakdown and
/// the progress-queue stats as an aligned table. Prints a one-line notice
/// instead when the build has ASPEN_TELEMETRY off.
void print_telemetry_summary(std::ostream& os,
                             const telemetry::snapshot& snap);

/// Write `{"bench": <name>, "telemetry": <snapshot JSON>}` to `path`.
/// Returns false (without throwing) if the file cannot be opened.
bool write_telemetry_sidecar(const std::string& path,
                             const std::string& bench_name,
                             const telemetry::snapshot& snap);

/// `{"eager": {"count": N, "p50_ns": N, "p99_ns": N, "max_ns": N},
/// "deferred": {...}}` — the op-class latency grid folded per disposition
/// (telemetry::snapshot::lat_by_disposition). Embedded in every sidecar and
/// printed by the figure drivers: the paper's headline contrast as numbers.
[[nodiscard]] std::string disposition_latency_json(
    const telemetry::snapshot& snap);

/// telemetry::aggregate(), re-read until two consecutive folds agree: a
/// tear-free snapshot while other threads are still ticking counters.
/// Single-threaded callers pay one extra fold; callers racing injector
/// threads (the --threads benches) get logically-consistent totals.
[[nodiscard]] telemetry::snapshot stable_aggregate();

// ---------------------------------------------------------------------------
// Cross-process aggregation (conduit::tcp jobs).
//
// Under `aspen-run` every rank is its own process, so there is no shared
// telemetry registry to aggregate() over: each rank writes its own sidecar
// (`rank_sidecar_path`) and the driver — the launcher's parent or rank 0 —
// reads them back and merges. Counters and monotone sums add across ranks;
// high-water marks take the max (a queue depth in one process says nothing
// about another's).
// ---------------------------------------------------------------------------

/// "<base>.rank<r>.telemetry.json" — the per-rank sidecar naming scheme.
[[nodiscard]] std::string rank_sidecar_path(const std::string& base, int rank);

/// Parse a sidecar written by write_telemetry_sidecar back into a snapshot.
/// Tolerant of unknown counter names (skipped) so sidecars from slightly
/// older builds still merge. Either out-param may be null. Returns false on
/// open failure or if the file does not look like a telemetry sidecar.
bool read_telemetry_sidecar(const std::string& path, std::string* bench_name,
                            telemetry::snapshot* out);

/// Merge per-rank snapshots of one job: counters, the progress-queue sums
/// and the fire histogram add; high-water marks take the elementwise max.
[[nodiscard]] telemetry::snapshot merge_snapshots(
    const std::vector<telemetry::snapshot>& parts);

/// Read and merge `rank_sidecar_path(base, r)` for r in [0, nranks) into
/// `*out`. Returns the number of sidecars successfully read; missing or
/// malformed files are skipped (a crashed rank should not hide the rest).
int merge_rank_sidecars(const std::string& base, int nranks,
                        telemetry::snapshot* out);

// ---------------------------------------------------------------------------
// Live aggregation (no sidecars) and multi-rank traces.
//
// With ASPEN_TELEMETRY_INTERVAL_MS set, every non-zero rank streams counter
// deltas to rank 0 over the wire (frame_kind::telemetry) and rank 0 holds
// the job-wide merge in memory — telemetry::live::job_snapshot(). These
// helpers render that aggregate and stitch the per-rank Trace Event files
// written when ASPEN_TELEMETRY_TRACE is set.
// ---------------------------------------------------------------------------

/// Print rank 0's live job-wide aggregate: the merged counter table plus a
/// per-rank breakdown (update counts and transport gauges). Call on rank 0
/// after a region ends; prints a notice when live telemetry is disabled.
void print_live_telemetry_report(std::ostream& os);

/// "<base>.rank<r>.trace.json" — the per-rank trace naming scheme used by
/// the endpoint when ASPEN_TELEMETRY_TRACE is set.
[[nodiscard]] std::string rank_trace_path(const std::string& base, int rank);

/// Stitch the per-rank Trace Event files `rank_trace_path(base, r)` for r
/// in [0, nranks) into one Perfetto-loadable JSON at `out_path`. Events
/// keep their offset-corrected timestamps, so spans and flow arrows from
/// different ranks land on one aligned time axis. Returns the number of
/// rank traces merged (missing files are skipped), or -1 if `out_path`
/// cannot be written.
int merge_rank_traces(const std::string& base, int nranks,
                      const std::string& out_path);

/// "<base>.rank<r>.otrace.json" — the per-rank flight-recorder export
/// scheme (identical to otrace::dump_path, re-stated here so drivers can
/// locate the files without linking the tracer).
[[nodiscard]] std::string rank_otrace_path(const std::string& base, int rank);

/// Stitch the per-rank otrace exports (region-exit Perfetto fragments with
/// 's'/'f' flow events per wire hop) into one merged timeline at
/// `out_path`, exactly like merge_rank_traces. Returns the number of rank
/// files merged, or -1 if `out_path` cannot be written.
int merge_rank_otraces(const std::string& base, int nranks,
                       const std::string& out_path);

}  // namespace aspen::bench
