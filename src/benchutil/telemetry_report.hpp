// Benchmark-side helpers for aspen::telemetry: a human-readable counter
// table and the JSON sidecar files the figure drivers emit next to their
// console output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/telemetry.hpp"

namespace aspen::bench {

/// Print the non-zero counters, the completion-disposition breakdown and
/// the progress-queue stats as an aligned table. Prints a one-line notice
/// instead when the build has ASPEN_TELEMETRY off.
void print_telemetry_summary(std::ostream& os,
                             const telemetry::snapshot& snap);

/// Write `{"bench": <name>, "telemetry": <snapshot JSON>}` to `path`.
/// Returns false (without throwing) if the file cannot be opened.
bool write_telemetry_sidecar(const std::string& path,
                             const std::string& bench_name,
                             const telemetry::snapshot& snap);

// ---------------------------------------------------------------------------
// Cross-process aggregation (conduit::tcp jobs).
//
// Under `aspen-run` every rank is its own process, so there is no shared
// telemetry registry to aggregate() over: each rank writes its own sidecar
// (`rank_sidecar_path`) and the driver — the launcher's parent or rank 0 —
// reads them back and merges. Counters and monotone sums add across ranks;
// high-water marks take the max (a queue depth in one process says nothing
// about another's).
// ---------------------------------------------------------------------------

/// "<base>.rank<r>.telemetry.json" — the per-rank sidecar naming scheme.
[[nodiscard]] std::string rank_sidecar_path(const std::string& base, int rank);

/// Parse a sidecar written by write_telemetry_sidecar back into a snapshot.
/// Tolerant of unknown counter names (skipped) so sidecars from slightly
/// older builds still merge. Either out-param may be null. Returns false on
/// open failure or if the file does not look like a telemetry sidecar.
bool read_telemetry_sidecar(const std::string& path, std::string* bench_name,
                            telemetry::snapshot* out);

/// Merge per-rank snapshots of one job: counters, the progress-queue sums
/// and the fire histogram add; high-water marks take the elementwise max.
[[nodiscard]] telemetry::snapshot merge_snapshots(
    const std::vector<telemetry::snapshot>& parts);

/// Read and merge `rank_sidecar_path(base, r)` for r in [0, nranks) into
/// `*out`. Returns the number of sidecars successfully read; missing or
/// malformed files are skipped (a crashed rank should not hide the rest).
int merge_rank_sidecars(const std::string& base, int nranks,
                        telemetry::snapshot* out);

}  // namespace aspen::bench
